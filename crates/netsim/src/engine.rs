//! Resumable multi-tenant transfer engine: many flow groups, one WAN.
//!
//! [`NetSim::run_transfers`] is a run-to-completion call: one batch of
//! transfers gets the whole network until it drains. Real GDA clusters
//! are not like that — queries from many tenants overlap, and every
//! shuffle contends with everyone else's shuffles on the same NICs and
//! backbone paths (the regime Tetrium and Kimchi actually target).
//! [`NetEngine`] generalizes the same event-coalescing machinery into a
//! *resumable* core:
//!
//! * [`NetEngine::submit`] registers a job-tagged **flow group** (one
//!   query's shuffle) at the current simulation time, mid-flight of any
//!   other group. A submission is just another rate-change event — the
//!   next solve sees the new flows, and every pair whose fair share moved
//!   re-anchors, exactly as a pair drain would.
//! * [`NetEngine::advance_until`] advances the simulation until the next
//!   **group completion event** or a caller deadline (a compute timer, an
//!   arrival), whichever comes first, and returns the completed groups'
//!   [`GroupReport`]s.
//!
//! The engine keeps the `O(events)` cost model of the coalesced transfer
//! loop whenever [`NetSim::coalescible`] holds (frozen *or* tick-quantized
//! live dynamics): one fairness solve per segment, where a segment ends
//! at a pair drain, a new submission, a caller deadline, a fault boundary
//! or a dynamics tick.
//! A lone group stepped to completion is **bit-identical** to
//! [`NetSim::run_transfers`] on the same transfers: both evaluate the
//! same closed-form per-pair expressions at the same anchor points (see
//! `engine_matches_run_transfers_for_a_lone_group` below and the parity
//! proptest in `wanify-gda`).
//!
//! Flows from *different* groups on the same DC pair stay distinct and
//! contend under weighted max-min fairness; flows *within* a group on the
//! same pair share one flow, as in `run_transfers` (Spark executors
//! multiplex a connection pool per peer).

use crate::flow::{FlowSpec, Transfer};
use crate::grid::{BwMatrix, ConnMatrix, Grid};
use crate::sim::{
    epochs_to_drain, NetSim, PairProgress, RateScratch, RunStats, MAX_EPOCHS, PAYLOAD_EPS_GB,
};
use crate::topology::DcId;

/// Identifier of a submitted flow group, unique within one engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

/// Completion record of one flow group.
#[derive(Debug, Clone)]
pub struct GroupReport {
    /// The group this report describes.
    pub group: GroupId,
    /// Simulation time when the group was submitted, seconds.
    pub submitted_s: f64,
    /// Simulation time when the last pair drained, seconds.
    pub completed_s: f64,
    /// Longest per-pair busy time within the group, seconds — the same
    /// quantity [`crate::TransferReport::makespan_s`] reports.
    pub makespan_s: f64,
    /// Smallest per-pair mean throughput among pairs that carried data.
    pub min_pair_bw_mbps: f64,
    /// Total gigabits moved per source DC (egress cost accounting).
    pub egress_gigabits: Vec<f64>,
}

/// One submitted group's in-flight state.
#[derive(Debug)]
struct GroupState {
    id: GroupId,
    conns: ConnMatrix,
    pairs: Vec<PairProgress>,
    active_pairs: usize,
    submitted_s: f64,
    /// Whether any transfer carried a strictly positive payload (drives
    /// the one-epoch makespan floor, as in `run_transfers`).
    any_payload: bool,
    /// Whether the group's pairs have been through at least one fairness
    /// solve — before that, zero quotas mean "not rated yet", not
    /// "stalled".
    solved: bool,
}

/// The resumable multi-tenant transfer engine. See the module docs.
#[derive(Debug)]
pub struct NetEngine {
    sim: NetSim,
    groups: Vec<GroupState>,
    next_group: u64,
    /// Reports of groups that completed instantly at submission (no WAN
    /// payload), delivered by the next `advance_until` call.
    ready: Vec<GroupReport>,
    stats: RunStats,
    scratch: RateScratch,
    flows: Vec<FlowSpec>,
    /// `(group index, pair index)` per entry of `flows`.
    flow_refs: Vec<(usize, usize)>,
}

impl NetEngine {
    /// Wraps `sim` into an engine. The engine drives all simulation time
    /// while groups are in flight.
    pub fn new(sim: NetSim) -> Self {
        let coalesced = sim.coalescible();
        Self {
            sim,
            groups: Vec::new(),
            next_group: 0,
            ready: Vec::new(),
            stats: RunStats { solves: 0, epochs: 0, coalesced },
            scratch: RateScratch::default(),
            flows: Vec::new(),
            flow_refs: Vec::new(),
        }
    }

    /// Read access to the wrapped simulator.
    pub fn sim(&self) -> &NetSim {
        &self.sim
    }

    /// Mutable access to the wrapped simulator, e.g. for gauging a
    /// [`BandwidthSource`](crate::BwMatrix) belief between events. Probes
    /// advance simulation time (measurement costs real seconds); in-flight
    /// pairs do not progress during that window, so measurement occupies
    /// wall-clock time without moving tenant payload — the monitoring-cost
    /// tradeoff the paper's Table 2 is about.
    pub fn sim_mut(&mut self) -> &mut NetSim {
        &mut self.sim
    }

    /// Unwraps the simulator.
    ///
    /// # Panics
    ///
    /// Panics if groups are still in flight (their accounting would be
    /// silently dropped).
    pub fn into_sim(self) -> NetSim {
        assert!(
            self.groups.is_empty() && self.ready.is_empty(),
            "cannot unwrap a NetEngine with {} group(s) in flight",
            self.groups.len() + self.ready.len()
        );
        self.sim
    }

    /// Number of groups currently in flight (excluding instantly-completed
    /// ones awaiting delivery).
    pub fn active_groups(&self) -> usize {
        self.groups.len()
    }

    /// True when no group is in flight and no completion awaits delivery.
    pub fn is_idle(&self) -> bool {
        self.groups.is_empty() && self.ready.is_empty()
    }

    /// True when at least one in-flight pair held a positive rate at the
    /// last fairness solve — i.e. another [`NetEngine::advance_until`]
    /// call can still move payload. `false` with groups in flight means
    /// every remaining flow is rate-zero (e.g. a 0-Mbps throttle): no
    /// amount of stepping will ever drain them. Callers driving the
    /// engine with open deadlines should treat an empty `advance_until`
    /// result as a permanent stall only when this is `false`; otherwise
    /// the call merely exhausted its per-call epoch budget on a slow but
    /// progressing transfer.
    pub fn has_live_flows(&self) -> bool {
        self.groups.iter().any(|g| g.pairs.iter().any(|p| p.active && p.quota > 0.0))
    }

    /// Groups whose every remaining pair held a zero rate at the last
    /// fairness solve — e.g. because a fault downed a DC they must cross.
    /// Such a group cannot progress until rates change (a fault heals, a
    /// throttle lifts) or a caller re-routes it via
    /// [`NetEngine::cancel_group`]. Freshly submitted groups that have not
    /// been through a solve yet are never reported. Ids come out in
    /// submission order.
    pub fn stalled_groups(&self) -> Vec<GroupId> {
        self.groups
            .iter()
            .filter(|g| g.solved && g.pairs.iter().all(|p| !p.active || p.quota <= 0.0))
            .map(|g| g.id)
            .collect()
    }

    /// Whether the given in-flight group is stalled per
    /// [`NetEngine::stalled_groups`] (false for unknown/completed ids).
    pub fn is_group_stalled(&self, id: GroupId) -> bool {
        self.groups
            .iter()
            .any(|g| g.id == id && g.solved && g.pairs.iter().all(|p| !p.active || p.quota <= 0.0))
    }

    /// Cancels an in-flight group: folds its accounting at the current
    /// simulation time and returns the partial [`GroupReport`] plus one
    /// [`Transfer`] per pair with undelivered payload, so a failure-aware
    /// caller can re-place and resubmit the remainder. Time spent stalled
    /// counts into the partial report's busy/makespan, as it would for a
    /// pair that later drained. Returns `None` for unknown ids and for
    /// groups that already completed (including instantly-completed groups
    /// awaiting delivery — their report arrives via
    /// [`NetEngine::advance_until`] as usual).
    pub fn cancel_group(&mut self, id: GroupId) -> Option<(GroupReport, Vec<Transfer>)> {
        let idx = self.groups.iter().position(|g| g.id == id)?;
        let mut group = self.groups.remove(idx);
        let dt = self.sim.params().epoch_dt_s.max(1e-3);
        let now = self.sim.time_s();
        let mut remaining = Vec::new();
        for pair in &mut group.pairs {
            pair.reanchor(dt);
            if pair.active && pair.remaining > PAYLOAD_EPS_GB {
                remaining.push(Transfer::new(DcId(pair.src), DcId(pair.dst), pair.remaining));
            }
            pair.active = false;
        }
        group.active_pairs = 0;
        Some((Self::report(&group, dt, now), remaining))
    }

    /// Cumulative engine statistics (also mirrored into
    /// [`NetSim::last_run_stats`] after every step).
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Submits a flow group at the current simulation time and returns its
    /// id. The group's transfers aggregate per directed pair (one flow per
    /// pair, as in [`NetSim::run_transfers`]); `conns` is the group's
    /// parallel-connection matrix. A group with no effective payload
    /// completes instantly and is reported by the next
    /// [`NetEngine::advance_until`] call.
    ///
    /// # Panics
    ///
    /// Panics if `conns` does not match the topology size or any payload
    /// is negative.
    pub fn submit(&mut self, transfers: &[Transfer], conns: &ConnMatrix) -> GroupId {
        let n = self.sim.topology().len();
        assert_eq!(conns.len(), n, "connection matrix must match topology size");
        for t in transfers {
            assert!(t.gigabits >= 0.0, "transfer payload must be non-negative");
        }
        let id = GroupId(self.next_group);
        self.next_group += 1;

        let mut totals = BwMatrix::new(n);
        for t in transfers {
            totals.put(t.src, t.dst, totals.at(t.src, t.dst) + t.gigabits);
        }
        let mut pairs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if totals.get(i, j) > PAYLOAD_EPS_GB {
                    pairs.push(PairProgress::new(i, j, totals.get(i, j)));
                }
            }
        }
        let any_payload = transfers.iter().any(|t| t.gigabits > 0.0);
        let now = self.sim.time_s();
        if pairs.is_empty() {
            // Nothing crosses the WAN: completion is immediate, with the
            // same one-epoch floor run_transfers applies to sub-epsilon
            // payloads.
            let dt = self.sim.params().epoch_dt_s.max(1e-3);
            self.ready.push(GroupReport {
                group: id,
                submitted_s: now,
                completed_s: now,
                makespan_s: if any_payload { dt } else { 0.0 },
                min_pair_bw_mbps: 0.0,
                egress_gigabits: vec![0.0; n],
            });
        } else {
            let active_pairs = pairs.len();
            self.groups.push(GroupState {
                id,
                conns: conns.clone(),
                pairs,
                active_pairs,
                submitted_s: now,
                any_payload,
                solved: false,
            });
        }
        id
    }

    /// Advances the simulation until the next group completion or until
    /// `deadline_s` (absolute simulation time), whichever comes first, and
    /// returns every group that completed at that instant (often one, but
    /// simultaneous drains are possible). An empty result means the
    /// deadline was reached — or the engine is idle, in which case time
    /// jumps straight to a finite deadline.
    ///
    /// While [`NetSim::coalescible`] holds, fairness is re-solved once
    /// per segment (pair drain, submission, deadline, fault boundary,
    /// dynamics tick); only the legacy continuous dynamics force the
    /// engine to step every epoch, as `run_transfers` does.
    pub fn advance_until(&mut self, deadline_s: f64) -> Vec<GroupReport> {
        if !self.ready.is_empty() {
            self.sync_stats();
            return std::mem::take(&mut self.ready);
        }
        let dt = self.sim.params().epoch_dt_s.max(1e-3);
        let fast = self.sim.coalescible();
        let mut completed: Vec<GroupReport> = Vec::new();
        let mut epochs_this_call: usize = 0;

        while completed.is_empty() {
            // Apply any fault events due at this solve point.
            self.sim.poll_faults();
            let now = self.sim.time_s();
            if self.groups.is_empty() {
                if deadline_s.is_finite() && deadline_s > now {
                    // Idle jump: pause at each scheduled fault so the
                    // fault state and degraded-time accounting stay exact
                    // while no flows are in flight.
                    self.sim.advance_through_faults(deadline_s);
                }
                break;
            }
            if deadline_s <= now || epochs_this_call >= MAX_EPOCHS {
                break;
            }

            // Build the active flow set across all groups, in submission
            // order then ascending (src, dst) — fully deterministic.
            self.flows.clear();
            self.flow_refs.clear();
            for (g, group) in self.groups.iter().enumerate() {
                for (p, pair) in group.pairs.iter().enumerate() {
                    if pair.active {
                        let c = if pair.src == pair.dst {
                            1
                        } else {
                            group.conns.get(pair.src, pair.dst).max(1)
                        };
                        self.flows.push(FlowSpec::new(DcId(pair.src), DcId(pair.dst), c));
                        self.flow_refs.push((g, p));
                    }
                }
            }
            let rates = self.sim.allocate_rates_with(&self.flows, &mut self.scratch);
            self.stats.solves += 1;

            // Re-anchor every pair whose per-epoch quota changed (drains,
            // new submissions and deadline re-entries all funnel through
            // this one check).
            for (f, &(g, p)) in self.flow_refs.iter().enumerate() {
                let quota = rates[f] * dt / 1000.0;
                let pair = &mut self.groups[g].pairs[p];
                if quota != pair.quota {
                    pair.reanchor(dt);
                    pair.quota = quota;
                }
            }
            for group in &mut self.groups {
                group.solved = true;
            }

            // Epochs to the next drain event (fast path) or exactly one
            // (per-epoch stepping under legacy continuous dynamics).
            let k_drain: u64 = if fast {
                let mut k = u64::MAX;
                for &(g, p) in &self.flow_refs {
                    let pair = &self.groups[g].pairs[p];
                    if let Some(m) = epochs_to_drain(pair.remaining, pair.quota, pair.served) {
                        k = k.min(m - pair.served);
                    }
                }
                k.max(1)
            } else {
                1
            };
            // Never jump past the next scheduled fault or dynamics tick:
            // both change rates just like a drain does.
            let k_fault = self.sim.epochs_until_next_fault(dt);
            let k_dyn = self.sim.epochs_until_next_rate_change(dt);
            let k_step = k_drain.min(k_fault).min(k_dyn);
            // Whole epochs that fit before the caller's deadline.
            let k_deadline: u64 = if deadline_s.is_finite() {
                ((deadline_s - now) / dt).floor() as u64
            } else {
                u64::MAX
            };
            let budget = (MAX_EPOCHS - epochs_this_call) as u64;

            if fast && k_step == u64::MAX && !deadline_s.is_finite() {
                // Permanent stall: no pair can ever drain (all rates are
                // zero) and no scheduled fault will change that. Return
                // empty instead of burning the epoch budget on no-payload
                // epochs; callers tell this apart from slowness via
                // `has_live_flows`.
                break;
            }
            if k_step <= k_deadline {
                let k = k_step.min(budget);
                for &(g, p) in &self.flow_refs {
                    let group = &mut self.groups[g];
                    let pair = &mut group.pairs[p];
                    pair.served += k;
                    if pair.current_remaining() <= PAYLOAD_EPS_GB {
                        pair.drain(dt);
                        group.active_pairs -= 1;
                    }
                }
                epochs_this_call += k as usize;
                self.stats.epochs += k;
                self.sim.advance(k as f64 * dt);
                let done_at = self.sim.time_s();
                for group in &self.groups {
                    if group.active_pairs == 0 {
                        completed.push(Self::report(group, dt, done_at));
                    }
                }
                self.groups.retain(|g| g.active_pairs > 0);
            } else {
                // The deadline lands before the next drain: serve the
                // whole epochs that fit, plus the fractional remainder
                // (multi-tenant only — a lone group never hits this), and
                // hand control back.
                let k = k_deadline.min(budget);
                if k > 0 {
                    for &(g, p) in &self.flow_refs {
                        self.groups[g].pairs[p].served += k;
                    }
                    self.stats.epochs += k;
                    self.sim.advance(k as f64 * dt);
                }
                let frac_s = deadline_s - self.sim.time_s();
                if frac_s > 0.0 {
                    for &(g, p) in &self.flow_refs {
                        let group = &mut self.groups[g];
                        let pair = &mut group.pairs[p];
                        pair.serve_partial(frac_s / dt, dt);
                        // A pair can finish *inside* the fraction (its
                        // drain was due next epoch); mark it drained now
                        // so its group completes at the deadline instead
                        // of occupying a fairness share for one more
                        // no-payload epoch.
                        if pair.active && pair.remaining <= PAYLOAD_EPS_GB {
                            pair.drain(dt);
                            group.active_pairs -= 1;
                        }
                    }
                    self.sim.advance(frac_s);
                    let done_at = self.sim.time_s();
                    for group in &self.groups {
                        if group.active_pairs == 0 {
                            completed.push(Self::report(group, dt, done_at));
                        }
                    }
                    self.groups.retain(|g| g.active_pairs > 0);
                }
                break;
            }
        }
        self.sync_stats();
        completed
    }

    /// Materializes a completed group's accounting.
    fn report(group: &GroupState, dt: f64, completed_s: f64) -> GroupReport {
        debug_assert_eq!(group.active_pairs, 0);
        let mut makespan = if group.any_payload { dt } else { 0.0 };
        let mut min_bw = f64::INFINITY;
        let n = group.conns.len();
        let mut egress = vec![0.0; n];
        for pair in &group.pairs {
            makespan = makespan.max(pair.busy);
            if pair.busy > 0.0 {
                min_bw = min_bw.min(pair.moved * 1000.0 / pair.busy);
            }
            egress[pair.src] += pair.moved;
        }
        GroupReport {
            group: group.id,
            submitted_s: group.submitted_s,
            completed_s,
            makespan_s: makespan,
            min_pair_bw_mbps: if min_bw.is_finite() { min_bw } else { 0.0 },
            egress_gigabits: egress,
        }
    }

    /// Mirrors cumulative counters into the simulator so
    /// [`NetSim::last_run_stats`] stays coherent across mid-flight
    /// submissions.
    fn sync_stats(&mut self) {
        self.sim.set_last_run_stats(self.stats);
    }

    /// Shard-boundary flow accounting: the engine's current demand on
    /// every directed cross-group trunk, in Mbps.
    ///
    /// For each in-flight pair whose endpoints sit in different region
    /// groups (per `group_of`, indexed by DC), the pair's *unreserved*
    /// ceiling — window limit × dynamics × provider factor, capped by
    /// traffic-control throttles but **not** by the current backbone
    /// reservation — is added to the `group(src) → group(dst)` cell. A
    /// cross-shard [`crate::Backbone`] divides each trunk across shards
    /// from these grids at every epoch-exchange sync point.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` does not match the topology size or any group
    /// index is `>= n_groups`.
    pub fn cross_group_demand_mbps(&self, group_of: &[usize], n_groups: usize) -> Grid<f64> {
        assert_eq!(group_of.len(), self.sim.topology().len(), "group map must cover every DC");
        let mut demand = Grid::filled(n_groups, 0.0);
        for group in &self.groups {
            for pair in &group.pairs {
                if !pair.active || pair.src == pair.dst {
                    continue;
                }
                let (gs, gd) = (group_of[pair.src], group_of[pair.dst]);
                if gs == gd {
                    continue;
                }
                let conns = group.conns.get(pair.src, pair.dst).max(1);
                let spec = FlowSpec::new(DcId(pair.src), DcId(pair.dst), conns);
                let ceiling = self.sim.unreserved_ceiling_mbps(&spec);
                demand.set(gs, gd, demand.get(gs, gd) + ceiling);
            }
        }
        demand
    }

    /// Applies one shard's granted backbone share as per-pair caps.
    ///
    /// `share_mbps` is this shard's grant per directed group pair (from
    /// [`crate::Backbone::allocate`]) and `demand_mbps` is the demand
    /// grid this engine reported via
    /// [`NetEngine::cross_group_demand_mbps`] for that exchange — passed
    /// back in rather than recomputed, both to avoid re-deriving every
    /// boundary pair's ceiling and to make explicit that the grant must
    /// be applied against the demand it was computed from. Each trunk's
    /// grant is split across the shard's in-flight boundary pairs on that
    /// trunk proportionally to their unreserved ceilings; pairs on trunks
    /// the shard has no in-flight demand on — and all intra-group pairs —
    /// stay uncapped until the next sync point (the documented coarseness
    /// of the epoch exchange). The caps replace any previous backbone
    /// reservation on the wrapped simulator; the next fairness solve
    /// re-anchors every pair whose rate they change.
    ///
    /// # Panics
    ///
    /// Panics if `group_of` does not match the topology size.
    pub fn apply_backbone_allocation(
        &mut self,
        group_of: &[usize],
        share_mbps: &Grid<f64>,
        demand_mbps: &Grid<f64>,
    ) {
        let caps = self.backbone_caps(group_of, share_mbps, demand_mbps);
        self.sim.set_backbone_caps(caps);
    }

    /// Applies several grouping tiers' grants at once, composing them by
    /// per-pair **minimum** — the hierarchical-sharding seam. A boundary
    /// pair crossing both a region-group border (tier 1) and a
    /// super-group border (tier 2) is limited by whichever tier grants
    /// it less; a pair interior to some tier is unconstrained by that
    /// tier, exactly as in the single-tier call. Each tier is an
    /// `(group_of, share, demand)` triple with the same semantics as
    /// [`NetEngine::apply_backbone_allocation`]; the composed caps
    /// replace any previous backbone reservation in one shot (two
    /// sequential single-tier calls would instead overwrite each other).
    ///
    /// # Panics
    ///
    /// Panics if any tier's group map does not match the topology size.
    pub fn apply_backbone_tiers(&mut self, tiers: &[(&[usize], &Grid<f64>, &Grid<f64>)]) {
        let n = self.sim.topology().len();
        let mut caps = Grid::filled(n, f64::INFINITY);
        for &(group_of, share, demand) in tiers {
            let tier = self.backbone_caps(group_of, share, demand);
            for src in 0..n {
                for dst in 0..n {
                    let composed = caps.get(src, dst).min(tier.get(src, dst));
                    caps.set(src, dst, composed);
                }
            }
        }
        self.sim.set_backbone_caps(caps);
    }

    /// The per-pair cap grid one tier's grant induces: each trunk's
    /// grant split across this engine's in-flight boundary pairs on that
    /// trunk proportionally to their unreserved ceilings (see
    /// [`NetEngine::apply_backbone_allocation`] for the semantics).
    fn backbone_caps(
        &self,
        group_of: &[usize],
        share_mbps: &Grid<f64>,
        demand_mbps: &Grid<f64>,
    ) -> Grid<f64> {
        let n = self.sim.topology().len();
        assert_eq!(group_of.len(), n, "group map must cover every DC");
        let totals = demand_mbps;
        let mut caps = Grid::filled(n, f64::INFINITY);
        for group in &self.groups {
            for pair in &group.pairs {
                if !pair.active || pair.src == pair.dst {
                    continue;
                }
                let (gs, gd) = (group_of[pair.src], group_of[pair.dst]);
                if gs == gd {
                    continue;
                }
                let share = share_mbps.get(gs, gd);
                if share.is_infinite() {
                    continue;
                }
                let total = totals.get(gs, gd);
                if total <= 0.0 {
                    continue;
                }
                let conns = group.conns.get(pair.src, pair.dst).max(1);
                let spec = FlowSpec::new(DcId(pair.src), DcId(pair.dst), conns);
                let ceiling = self.sim.unreserved_ceiling_mbps(&spec);
                let slice = share * (ceiling / total);
                let cell = caps.get(pair.src, pair.dst);
                // Flows from several groups can share a DC pair; their
                // slices add up to the pair's aggregate cap.
                caps.set(pair.src, pair.dst, if cell.is_infinite() { slice } else { cell + slice });
            }
        }
        caps
    }

    /// Aggregate rate per directed pair at the last fairness solve, in
    /// Mbps: the sum over in-flight groups of each active pair's current
    /// allocation. A fleet-level agent reads this as its `ifTop`
    /// monitoring stand-in (paper §4.1.3). Zero for pairs with no active
    /// flow and for freshly submitted groups not yet through a solve.
    pub fn observed_pair_bw_mbps(&self) -> BwMatrix {
        let n = self.sim.topology().len();
        let dt = self.sim.params().epoch_dt_s.max(1e-3);
        let mut bw = BwMatrix::new(n);
        for group in &self.groups {
            for pair in &group.pairs {
                if pair.active {
                    let rate = pair.quota * 1000.0 / dt;
                    bw.set(pair.src, pair.dst, bw.get(pair.src, pair.dst) + rate);
                }
            }
        }
        bw
    }

    /// Remaining WAN payload per directed pair in gigabits, summed over
    /// every in-flight group — the demand signal a fleet-level agent
    /// weighs its connection optimization by.
    pub fn remaining_pair_gb(&self) -> BwMatrix {
        let n = self.sim.topology().len();
        let mut left = BwMatrix::new(n);
        for group in &self.groups {
            for pair in &group.pairs {
                if pair.active {
                    let r = pair.current_remaining().max(0.0);
                    left.set(pair.src, pair.dst, left.get(pair.src, pair.dst) + r);
                }
            }
        }
        left
    }

    /// Overwrites the connection matrix of every in-flight group — the
    /// fleet-level agent's intervention point. The next fairness solve
    /// sees the new counts, and every pair whose fair share moves
    /// re-anchors, exactly as any other rate-change event.
    ///
    /// # Panics
    ///
    /// Panics if `conns` does not match the topology size.
    pub fn apply_conns(&mut self, conns: &ConnMatrix) {
        assert_eq!(
            conns.len(),
            self.sim.topology().len(),
            "connection matrix must match topology size"
        );
        for group in &mut self.groups {
            group.conns = conns.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;
    use crate::params::LinkModelParams;
    use crate::topology::Topology;
    use crate::vm::VmType;

    fn sim3() -> NetSim {
        let topo = Topology::builder()
            .dc(Region::UsEast, VmType::t3_nano(), 1)
            .dc(Region::UsWest, VmType::t3_nano(), 1)
            .dc(Region::ApSoutheast1, VmType::t3_nano(), 1)
            .build()
            .unwrap();
        NetSim::new(topo, LinkModelParams::frozen(), 1)
    }

    fn drive_to_completion(engine: &mut NetEngine) -> Vec<GroupReport> {
        let mut reports = Vec::new();
        while !engine.is_idle() {
            reports.extend(engine.advance_until(f64::INFINITY));
        }
        reports
    }

    #[test]
    fn engine_matches_run_transfers_for_a_lone_group() {
        let transfers = [
            Transfer::new(DcId(0), DcId(1), 40.0),
            Transfer::new(DcId(0), DcId(2), 10.0),
            Transfer::new(DcId(2), DcId(1), 5.0),
        ];
        let conns = ConnMatrix::filled(3, 2);

        let mut sim = sim3();
        let blocking = sim.run_transfers(&transfers, &conns, None);
        let blocking_stats = sim.last_run_stats();

        let mut engine = NetEngine::new(sim3());
        engine.submit(&transfers, &conns);
        let reports = drive_to_completion(&mut engine);
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.makespan_s.to_bits(), blocking.makespan_s.to_bits());
        assert_eq!(r.min_pair_bw_mbps.to_bits(), blocking.min_pair_bw_mbps.to_bits());
        for (a, b) in r.egress_gigabits.iter().zip(&blocking.egress_gigabits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = engine.sim().last_run_stats();
        assert_eq!(stats.solves, blocking_stats.solves);
        assert_eq!(stats.epochs, blocking_stats.epochs);
        assert!(stats.coalesced);
    }

    #[test]
    fn mid_flight_submission_slows_the_first_tenant() {
        let transfers = [Transfer::new(DcId(0), DcId(1), 20.0)];
        let conns = ConnMatrix::filled(3, 1);

        let mut solo = NetEngine::new(sim3());
        solo.submit(&transfers, &conns);
        let solo_report = drive_to_completion(&mut solo).remove(0);

        let mut shared = NetEngine::new(sim3());
        shared.submit(&transfers, &conns);
        // A second tenant arrives 2 s in, shuffling on the same pair.
        let mid = shared.advance_until(2.0);
        assert!(mid.is_empty(), "nothing should drain in the first 2 s");
        shared.submit(&[Transfer::new(DcId(0), DcId(1), 20.0)], &conns);
        let reports = drive_to_completion(&mut shared);
        assert_eq!(reports.len(), 2);
        let first = reports.iter().find(|r| r.group == GroupId(0)).unwrap();
        assert!(
            first.makespan_s > solo_report.makespan_s,
            "contended {} vs solo {}",
            first.makespan_s,
            solo_report.makespan_s
        );
    }

    #[test]
    fn stats_stay_coherent_across_mid_flight_submissions() {
        let conns = ConnMatrix::filled(3, 1);
        let mut engine = NetEngine::new(sim3());
        engine.submit(&[Transfer::new(DcId(0), DcId(1), 8.0)], &conns);
        let _ = engine.advance_until(1.0);
        let after_first = engine.sim().last_run_stats();
        assert!(after_first.solves >= 1);
        engine.submit(&[Transfer::new(DcId(2), DcId(1), 8.0)], &conns);
        let _ = drive_to_completion(&mut engine);
        let final_stats = engine.sim().last_run_stats();
        assert!(final_stats.solves > after_first.solves, "solves must accumulate");
        assert!(final_stats.epochs > after_first.epochs, "epochs must accumulate");
        assert_eq!(final_stats, engine.stats());
        assert!(final_stats.coalesced);
    }

    #[test]
    fn deadline_is_respected_and_resumable() {
        let conns = ConnMatrix::filled(3, 1);
        let mut engine = NetEngine::new(sim3());
        engine.submit(&[Transfer::new(DcId(0), DcId(2), 50.0)], &conns);
        // Deadline strictly inside an epoch: time must land exactly there.
        let none = engine.advance_until(2.6);
        assert!(none.is_empty());
        assert!((engine.sim().time_s() - 2.6).abs() < 1e-9);
        assert_eq!(engine.active_groups(), 1);
        let reports = drive_to_completion(&mut engine);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].completed_s > 2.6);
    }

    #[test]
    fn idle_engine_jumps_to_deadline() {
        let mut engine = NetEngine::new(sim3());
        assert!(engine.is_idle());
        let none = engine.advance_until(7.5);
        assert!(none.is_empty());
        assert!((engine.sim().time_s() - 7.5).abs() < 1e-9);
    }

    #[test]
    fn empty_group_completes_instantly() {
        let conns = ConnMatrix::filled(3, 1);
        let mut engine = NetEngine::new(sim3());
        let id = engine.submit(&[Transfer::new(DcId(0), DcId(1), 0.0)], &conns);
        assert!(!engine.is_idle());
        let reports = engine.advance_until(f64::INFINITY);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].group, id);
        assert_eq!(reports[0].makespan_s, 0.0);
        assert_eq!(reports[0].min_pair_bw_mbps, 0.0);
        assert!(engine.is_idle());
        assert_eq!(engine.sim().time_s(), 0.0, "no time passes for an empty group");
    }

    #[test]
    fn has_live_flows_separates_stalls_from_slow_transfers() {
        let conns = ConnMatrix::filled(3, 1);
        // A progressing transfer: live flows while in flight.
        let mut engine = NetEngine::new(sim3());
        engine.submit(&[Transfer::new(DcId(0), DcId(1), 10.0)], &conns);
        let _ = engine.advance_until(1.0);
        assert!(engine.has_live_flows());
        // A rate-zero transfer (0-Mbps throttle): permanently stalled.
        let mut sim = sim3();
        sim.set_throttle(DcId(0), DcId(1), 0.0);
        let mut engine = NetEngine::new(sim);
        engine.submit(&[Transfer::new(DcId(0), DcId(1), 1.0)], &conns);
        let none = engine.advance_until(f64::INFINITY);
        assert!(none.is_empty(), "a rate-zero pair can never drain");
        assert!(!engine.is_idle());
        assert!(!engine.has_live_flows(), "stall must be distinguishable from slowness");
    }

    #[test]
    fn pair_finishing_inside_a_fractional_serve_drains_at_the_deadline() {
        let conns = ConnMatrix::filled(3, 1);
        let mut engine = NetEngine::new(sim3());
        let dt = engine.sim().params().epoch_dt_s;
        // Size the payload to 80 % of one epoch's quota: it would drain at
        // the first whole epoch, but a deadline at 0.9 epochs covers it
        // (0.9 × quota ≥ 0.8 × quota), so the partial serve must finish it.
        let rate = engine.sim().allocate_rates(&[FlowSpec::new(DcId(0), DcId(1), 1)])[0];
        let quota_gb = rate * dt / 1000.0;
        engine.submit(&[Transfer::new(DcId(0), DcId(1), 0.8 * quota_gb)], &conns);
        let events = engine.advance_until(0.9 * dt);
        assert_eq!(events.len(), 1, "the pair drained inside the fraction");
        assert!((events[0].completed_s - 0.9 * dt).abs() < 1e-9);
        assert!(engine.is_idle());
    }

    #[test]
    fn payload_is_conserved_across_tenants() {
        let conns = ConnMatrix::filled(3, 2);
        let mut engine = NetEngine::new(sim3());
        engine.submit(&[Transfer::new(DcId(0), DcId(1), 6.0)], &conns);
        let _ = engine.advance_until(1.3); // force a fractional-epoch serve
        engine.submit(&[Transfer::new(DcId(1), DcId(2), 4.0)], &conns);
        let reports = drive_to_completion(&mut engine);
        let moved: f64 = reports.iter().flat_map(|r| r.egress_gigabits.iter()).sum();
        assert!((moved - 10.0).abs() < 1e-6, "moved {moved} Gb of 10 Gb submitted");
    }

    #[test]
    fn same_timestamp_drains_report_in_group_id_order() {
        // Regression for deterministic event ordering: two identical
        // groups on the same pair get the same fair share, so their pairs
        // drain at the same epoch; the completion events must come out in
        // ascending GroupId (submission) order, every time.
        let conns = ConnMatrix::filled(3, 1);
        let mut engine = NetEngine::new(sim3());
        let ids: Vec<GroupId> = (0..3)
            .map(|_| engine.submit(&[Transfer::new(DcId(0), DcId(1), 12.0)], &conns))
            .collect();
        let events = engine.advance_until(f64::INFINITY);
        assert_eq!(events.len(), 3, "equal groups drain at the same instant");
        let first_done = events[0].completed_s;
        for (event, id) in events.iter().zip(&ids) {
            assert_eq!(event.group, *id, "events must be ordered by GroupId");
            assert_eq!(event.completed_s.to_bits(), first_done.to_bits());
        }
        assert!(engine.is_idle());
    }

    #[test]
    fn cross_group_demand_counts_only_boundary_pairs() {
        let conns = ConnMatrix::filled(3, 2);
        let mut engine = NetEngine::new(sim3());
        // DC0, DC1 in group 0; DC2 in group 1.
        let groups = [0usize, 0, 1];
        engine.submit(
            &[
                Transfer::new(DcId(0), DcId(1), 5.0), // intra-group
                Transfer::new(DcId(0), DcId(2), 5.0), // boundary 0 → 1
                Transfer::new(DcId(2), DcId(1), 5.0), // boundary 1 → 0
            ],
            &conns,
        );
        let demand = engine.cross_group_demand_mbps(&groups, 2);
        let spec02 = FlowSpec::new(DcId(0), DcId(2), 2);
        let spec21 = FlowSpec::new(DcId(2), DcId(1), 2);
        let want02 = engine.sim().unreserved_ceiling_mbps(&spec02);
        let want21 = engine.sim().unreserved_ceiling_mbps(&spec21);
        assert_eq!(demand.get(0, 1).to_bits(), want02.to_bits());
        assert_eq!(demand.get(1, 0).to_bits(), want21.to_bits());
        assert_eq!(demand.get(0, 0), 0.0, "intra-group traffic never hits the backbone");
    }

    #[test]
    fn backbone_allocation_caps_boundary_pairs_and_slows_them() {
        let conns = ConnMatrix::filled(3, 1);
        let groups = [0usize, 0, 1];

        let mut free = NetEngine::new(sim3());
        free.submit(&[Transfer::new(DcId(0), DcId(2), 10.0)], &conns);
        let unconstrained = drive_to_completion(&mut free).remove(0);

        let mut capped = NetEngine::new(sim3());
        capped.submit(&[Transfer::new(DcId(0), DcId(2), 10.0)], &conns);
        let mut share = crate::grid::Grid::filled(2, f64::INFINITY);
        share.set(0, 1, 20.0); // a 20 Mbps trunk reservation
        let demand = capped.cross_group_demand_mbps(&groups, 2);
        capped.apply_backbone_allocation(&groups, &share, &demand);
        assert!((capped.sim().backbone_caps().get(0, 2) - 20.0).abs() < 1e-9);
        assert!(capped.sim().backbone_caps().get(0, 1).is_infinite());
        let constrained = drive_to_completion(&mut capped).remove(0);
        assert!(
            constrained.makespan_s > 2.0 * unconstrained.makespan_s,
            "a tight trunk reservation must slow the boundary shuffle: {} vs {}",
            constrained.makespan_s,
            unconstrained.makespan_s
        );
    }

    #[test]
    fn engine_fault_parity_with_run_transfers() {
        // A lone group stepped through an outage + flap timeline must stay
        // bit-identical to the blocking transfer loop on the same schedule.
        let schedule = || {
            crate::faults::FaultSchedule::new().dc_outage(DcId(2), 2.0, 8.0).link_flap(
                DcId(0),
                DcId(1),
                0.5,
                1.0,
                4.0,
                2,
            )
        };
        let transfers =
            [Transfer::new(DcId(0), DcId(1), 12.0), Transfer::new(DcId(0), DcId(2), 3.0)];
        let conns = ConnMatrix::filled(3, 2);

        let mut sim = sim3();
        sim.set_fault_schedule(schedule());
        let blocking = sim.run_transfers(&transfers, &conns, None);

        let mut faulted_sim = sim3();
        faulted_sim.set_fault_schedule(schedule());
        let mut engine = NetEngine::new(faulted_sim);
        engine.submit(&transfers, &conns);
        let reports = drive_to_completion(&mut engine);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].makespan_s.to_bits(), blocking.makespan_s.to_bits());
        assert_eq!(reports[0].min_pair_bw_mbps.to_bits(), blocking.min_pair_bw_mbps.to_bits());
        for (a, b) in reports[0].egress_gigabits.iter().zip(&blocking.egress_gigabits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(engine.sim().degraded_s().to_bits(), sim.degraded_s().to_bits());
    }

    #[test]
    fn engine_live_dynamics_parity_with_run_transfers() {
        // Tick-quantized OU dynamics: the engine clips its jumps at the
        // same tick boundaries the blocking loop does, and the chunked
        // dynamics advance consumes the identical RNG stream, so a lone
        // group must stay bit-identical — at far fewer solves than epochs.
        let live_sim3 = || {
            let topo = Topology::builder()
                .dc(Region::UsEast, VmType::t3_nano(), 1)
                .dc(Region::UsWest, VmType::t3_nano(), 1)
                .dc(Region::ApSoutheast1, VmType::t3_nano(), 1)
                .build()
                .unwrap();
            let params = LinkModelParams {
                dynamics_tick_s: 30.0,
                snapshot_noise: 0.0,
                ..Default::default()
            };
            NetSim::new(topo, params, 19)
        };
        let transfers =
            [Transfer::new(DcId(0), DcId(1), 80.0), Transfer::new(DcId(0), DcId(2), 15.0)];
        let conns = ConnMatrix::filled(3, 2);

        let mut sim = live_sim3();
        let blocking = sim.run_transfers(&transfers, &conns, None);

        let mut engine = NetEngine::new(live_sim3());
        engine.submit(&transfers, &conns);
        let reports = drive_to_completion(&mut engine);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].makespan_s.to_bits(), blocking.makespan_s.to_bits());
        assert_eq!(reports[0].min_pair_bw_mbps.to_bits(), blocking.min_pair_bw_mbps.to_bits());
        for (a, b) in reports[0].egress_gigabits.iter().zip(&blocking.egress_gigabits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let stats = engine.sim().last_run_stats();
        assert!(stats.coalesced);
        assert!(
            stats.solves * 10 <= stats.epochs,
            "30 s ticks should coalesce >= 10x: {} solves over {} epochs",
            stats.solves,
            stats.epochs
        );
    }

    #[test]
    fn outage_mid_flight_stalls_then_recovery_completes() {
        let conns = ConnMatrix::filled(3, 1);
        let mut sim = sim3();
        sim.set_fault_schedule(crate::faults::FaultSchedule::new().dc_outage(DcId(1), 1.0, 25.0));
        let mut engine = NetEngine::new(sim);
        let id = engine.submit(&[Transfer::new(DcId(0), DcId(1), 2.0)], &conns);
        // Mid-outage the group is stalled but not dead: recovery pends.
        let none = engine.advance_until(10.0);
        assert!(none.is_empty());
        assert!(engine.is_group_stalled(id), "outage must stall the group");
        assert_eq!(engine.stalled_groups(), vec![id]);
        assert!(!engine.has_live_flows());
        assert!(engine.sim().has_pending_faults(), "recovery is still scheduled");
        // Recovery drains it without any caller intervention.
        let reports = drive_to_completion(&mut engine);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].completed_s > 25.0, "completed at {}", reports[0].completed_s);
        assert!(!engine.is_group_stalled(id));
    }

    #[test]
    fn permanent_outage_returns_empty_without_burning_the_epoch_budget() {
        let conns = ConnMatrix::filled(3, 1);
        let mut sim = sim3();
        sim.set_fault_schedule(
            crate::faults::FaultSchedule::new().at(0.5, crate::faults::FaultKind::DcDown(DcId(1))),
        );
        let mut engine = NetEngine::new(sim);
        let id = engine.submit(&[Transfer::new(DcId(0), DcId(1), 2.0)], &conns);
        let none = engine.advance_until(f64::INFINITY);
        assert!(none.is_empty());
        assert!(!engine.is_idle());
        assert!(!engine.has_live_flows());
        assert!(engine.is_group_stalled(id));
        assert!(!engine.sim().has_pending_faults(), "nothing left to heal the pair");
        assert!(
            engine.stats().epochs < 10_000,
            "dead-stall break must not serve empty epochs: {}",
            engine.stats().epochs
        );
    }

    #[test]
    fn cancel_group_returns_partial_accounting_and_remainder() {
        let conns = ConnMatrix::filled(3, 1);
        let mut sim = sim3();
        sim.set_fault_schedule(
            crate::faults::FaultSchedule::new().at(2.0, crate::faults::FaultKind::DcDown(DcId(1))),
        );
        let mut engine = NetEngine::new(sim);
        let id = engine.submit(&[Transfer::new(DcId(0), DcId(1), 8.0)], &conns);
        let _ = engine.advance_until(10.0);
        assert!(engine.is_group_stalled(id));
        let (partial, remaining) = engine.cancel_group(id).expect("group is in flight");
        assert_eq!(partial.group, id);
        assert_eq!(remaining.len(), 1, "one pair still holds payload");
        let left = remaining[0].gigabits;
        let moved = partial.egress_gigabits[0];
        assert!(moved > 0.0, "2 s of healthy transfer moved something");
        assert!((moved + left - 8.0).abs() < 1e-6, "cancel conserves payload: {moved} + {left}");
        assert!(engine.is_idle(), "cancel removed the only group");
        assert!(engine.cancel_group(id).is_none(), "double cancel is a no-op");
    }

    #[test]
    fn idle_jumps_keep_degraded_time_exact() {
        let mut sim = sim3();
        sim.set_fault_schedule(crate::faults::FaultSchedule::new().dc_outage(DcId(0), 5.0, 9.0));
        let mut engine = NetEngine::new(sim);
        let none = engine.advance_until(20.0);
        assert!(none.is_empty());
        assert!((engine.sim().time_s() - 20.0).abs() < 1e-9);
        assert!((engine.sim().degraded_s() - 4.0).abs() < 1e-9, "{}", engine.sim().degraded_s());
        assert!(!engine.sim().fault_degraded());
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn into_sim_refuses_while_groups_run() {
        let conns = ConnMatrix::filled(3, 1);
        let mut engine = NetEngine::new(sim3());
        engine.submit(&[Transfer::new(DcId(0), DcId(1), 1.0)], &conns);
        let _ = engine.into_sim();
    }
}
