//! Flows and bulk transfers.

use crate::grid::BwMatrix;
use crate::topology::DcId;

/// Identifier of a flow within one allocation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// A live directed flow between two data centers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Source data center.
    pub src: DcId,
    /// Destination data center.
    pub dst: DcId,
    /// Number of parallel connections carrying the flow.
    pub conns: u32,
}

impl FlowSpec {
    /// Creates a flow with `conns` parallel connections.
    pub fn new(src: DcId, dst: DcId, conns: u32) -> Self {
        Self { src, dst, conns }
    }
}

/// A bulk data transfer request (paper's shuffle traffic between a DC pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Source data center.
    pub src: DcId,
    /// Destination data center.
    pub dst: DcId,
    /// Payload in gigabits (the paper's Fig. 2(d) uses Gb for data sizes).
    pub gigabits: f64,
}

impl Transfer {
    /// Creates a transfer of `gigabits` from `src` to `dst`.
    pub fn new(src: DcId, dst: DcId, gigabits: f64) -> Self {
        Self { src, dst, gigabits }
    }

    /// Creates a transfer sized in gigabytes.
    pub fn from_gigabytes(src: DcId, dst: DcId, gigabytes: f64) -> Self {
        Self { src, dst, gigabits: gigabytes * 8.0 }
    }
}

/// Outcome of simulating a batch of transfers to completion.
#[derive(Debug, Clone)]
pub struct TransferReport {
    /// Wall-clock seconds until the last transfer finished.
    pub makespan_s: f64,
    /// Completion time of each transfer, parallel to the request slice.
    pub completion_s: Vec<f64>,
    /// Mean achieved throughput per directed pair while it was busy (Mbps).
    pub achieved_bw: BwMatrix,
    /// Smallest per-pair mean throughput among pairs that carried data.
    pub min_pair_bw_mbps: f64,
    /// Total gigabits moved per source DC (for egress cost accounting).
    pub egress_gigabits: Vec<f64>,
    /// Number of simulation epochs covered (each `epoch_dt_s` seconds).
    /// Coalesced runs *cover* the same epochs they skip re-solving for,
    /// so this count is identical on the fast and per-epoch paths.
    pub epochs: usize,
}

impl TransferReport {
    /// Mean throughput of the busiest pair, in Mbps.
    pub fn max_pair_bw_mbps(&self) -> f64 {
        self.achieved_bw.max_off_diag()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabyte_conversion() {
        let t = Transfer::from_gigabytes(DcId(0), DcId(1), 2.0);
        assert!((t.gigabits - 16.0).abs() < 1e-12);
    }

    #[test]
    fn flow_spec_roundtrip() {
        let f = FlowSpec::new(DcId(3), DcId(1), 9);
        assert_eq!(f.src, DcId(3));
        assert_eq!(f.conns, 9);
    }
}
