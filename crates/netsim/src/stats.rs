//! Small statistics helpers shared by the simulator and experiments.

use rand::Rng;

/// Draws a standard normal sample via the Box-Muller transform.
///
/// `rand` (without `rand_distr`) has no normal distribution; this keeps the
/// dependency footprint to the approved offline set.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open interval (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// The paper (§2.2) notes that 1-second snapshots have a positive Pearson
/// correlation with 20-second stable bandwidths, which is what makes
/// snapshot-based prediction viable.
///
/// Returns 0.0 if either side has zero variance or the slices are empty.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs equal-length samples");
    if xs.is_empty() {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Clamps `x` into `[lo, hi]`.
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_samples_have_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000).map(|_| sample_standard_normal(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.05, "mean {}", mean(&xs));
        assert!((std_dev(&xs) - 1.0).abs() < 0.05, "sd {}", std_dev(&xs));
    }

    #[test]
    fn mean_and_std_dev_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_anticorrelation_and_degenerate() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}
