//! Data-center topology: regions, VM fleets, distances and RTTs.

use crate::geo::{haversine_miles, Region};
use crate::grid::Grid;
use crate::vm::VmType;

/// Index of a data center within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DcId(pub usize);

impl std::fmt::Display for DcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DC{}", self.0)
    }
}

/// A data center: a region plus a homogeneous fleet of worker VMs.
///
/// WANify's *association* rule (paper §3.3.3) treats multiple VMs in one DC
/// as a single large VM whose NIC capacity is the sum of the members'; the
/// simulator follows the same aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCenter {
    /// Cloud region hosting the DC.
    pub region: Region,
    /// VM flavor of every worker in this DC.
    pub vm: VmType,
    /// Number of worker VMs.
    pub vm_count: u32,
}

impl DataCenter {
    /// Aggregate WAN egress capacity across the fleet, in Mbps.
    pub fn egress_cap_mbps(&self) -> f64 {
        self.vm.wan_egress_mbps * f64::from(self.vm_count)
    }

    /// Aggregate WAN ingress capacity across the fleet, in Mbps.
    pub fn ingress_cap_mbps(&self) -> f64 {
        self.vm.wan_ingress_mbps * f64::from(self.vm_count)
    }

    /// Aggregate connection budget across the fleet.
    pub fn conn_budget(&self) -> u32 {
        self.vm.conn_budget * self.vm_count
    }

    /// Total vCPUs across the fleet.
    pub fn vcpus(&self) -> u32 {
        self.vm.vcpus * self.vm_count
    }
}

/// Error building a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Fewer than two data centers were supplied.
    TooFewDataCenters(usize),
    /// A data center was declared with zero VMs.
    EmptyDataCenter(Region),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::TooFewDataCenters(n) => {
                write!(f, "a WAN topology needs at least 2 data centers, got {n}")
            }
            TopologyError::EmptyDataCenter(r) => {
                write!(f, "data center in {r} was declared with zero VMs")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for [`Topology`] (see [`Topology::builder`]).
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    dcs: Vec<DataCenter>,
}

impl TopologyBuilder {
    /// Adds a data center with `vm_count` VMs of flavor `vm` in `region`.
    #[must_use]
    pub fn dc(mut self, region: Region, vm: VmType, vm_count: u32) -> Self {
        self.dcs.push(DataCenter { region, vm, vm_count });
        self
    }

    /// Finalizes the topology, precomputing distances and RTTs.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if fewer than two DCs were added or any DC
    /// has zero VMs.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.dcs.len() < 2 {
            return Err(TopologyError::TooFewDataCenters(self.dcs.len()));
        }
        if let Some(dc) = self.dcs.iter().find(|d| d.vm_count == 0) {
            return Err(TopologyError::EmptyDataCenter(dc.region));
        }
        let n = self.dcs.len();
        let distances = Grid::from_fn(n, |i, j| {
            haversine_miles(self.dcs[i].region.location(), self.dcs[j].region.location())
        });
        Ok(Topology { dcs: self.dcs, distances })
    }
}

/// An immutable multi-DC WAN topology.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    dcs: Vec<DataCenter>,
    distances: Grid<f64>,
}

impl Topology {
    /// Starts building a topology.
    ///
    /// # Examples
    ///
    /// ```
    /// use wanify_netsim::{Topology, Region, VmType};
    /// let topo = Topology::builder()
    ///     .dc(Region::UsEast, VmType::t2_medium(), 1)
    ///     .dc(Region::EuWest, VmType::t2_medium(), 2)
    ///     .build()?;
    /// assert_eq!(topo.len(), 2);
    /// # Ok::<(), wanify_netsim::TopologyError>(())
    /// ```
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of data centers.
    pub fn len(&self) -> usize {
        self.dcs.len()
    }

    /// Always false: topologies have at least two DCs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The data center with index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn dc(&self, id: DcId) -> &DataCenter {
        &self.dcs[id.0]
    }

    /// Iterates over `(DcId, &DataCenter)`.
    pub fn iter(&self) -> impl Iterator<Item = (DcId, &DataCenter)> {
        self.dcs.iter().enumerate().map(|(i, dc)| (DcId(i), dc))
    }

    /// All DC ids in index order.
    pub fn ids(&self) -> Vec<DcId> {
        (0..self.dcs.len()).map(DcId).collect()
    }

    /// Great-circle distance between two DCs in miles.
    pub fn distance_miles(&self, a: DcId, b: DcId) -> f64 {
        self.distances.get(a.0, b.0)
    }

    /// Distance matrix in miles (feature `Dij` of the prediction model).
    pub fn distance_matrix(&self) -> &Grid<f64> {
        &self.distances
    }

    /// Region display names, used to label rendered matrices.
    pub fn labels(&self) -> Vec<String> {
        self.dcs.iter().map(|d| d.region.name().to_string()).collect()
    }

    /// Returns a copy of the topology with `extra` additional VMs in `dc`
    /// (heterogeneous-VM experiments, paper §5.8.3).
    ///
    /// # Panics
    ///
    /// Panics if `dc` is out of range.
    pub fn with_extra_vms(&self, dc: DcId, extra: u32) -> Topology {
        let mut t = self.clone();
        t.dcs[dc.0].vm_count += extra;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_dc() -> Topology {
        Topology::builder()
            .dc(Region::UsEast, VmType::t2_medium(), 1)
            .dc(Region::UsWest, VmType::t2_medium(), 1)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_single_dc() {
        let err =
            Topology::builder().dc(Region::UsEast, VmType::t2_medium(), 1).build().unwrap_err();
        assert_eq!(err, TopologyError::TooFewDataCenters(1));
    }

    #[test]
    fn builder_rejects_zero_vm_dc() {
        let err = Topology::builder()
            .dc(Region::UsEast, VmType::t2_medium(), 1)
            .dc(Region::UsWest, VmType::t2_medium(), 0)
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::EmptyDataCenter(Region::UsWest));
    }

    #[test]
    fn distances_are_symmetric_and_zero_on_diagonal() {
        let t = two_dc();
        assert_eq!(t.distance_miles(DcId(0), DcId(0)), 0.0);
        let d01 = t.distance_miles(DcId(0), DcId(1));
        let d10 = t.distance_miles(DcId(1), DcId(0));
        assert!((d01 - d10).abs() < 1e-9 && d01 > 2000.0);
    }

    #[test]
    fn association_aggregates_vm_fleet() {
        let t = Topology::builder()
            .dc(Region::UsEast, VmType::t2_medium(), 3)
            .dc(Region::UsWest, VmType::t2_medium(), 1)
            .build()
            .unwrap();
        let dc = t.dc(DcId(0));
        assert!((dc.egress_cap_mbps() - 3.0 * dc.vm.wan_egress_mbps).abs() < 1e-9);
        assert_eq!(dc.conn_budget(), 72);
        assert_eq!(dc.vcpus(), 6);
    }

    #[test]
    fn with_extra_vms_only_touches_target() {
        let t = two_dc().with_extra_vms(DcId(1), 2);
        assert_eq!(t.dc(DcId(0)).vm_count, 1);
        assert_eq!(t.dc(DcId(1)).vm_count, 3);
    }

    #[test]
    fn error_messages_are_lowercase_and_informative() {
        let msg = TopologyError::TooFewDataCenters(0).to_string();
        assert!(msg.starts_with('a') && msg.contains("at least 2"));
    }
}
