//! Bandwidth probes: the simulator's iPerf and ifTop.
//!
//! Four measurement styles from the paper:
//!
//! * **static-independent** (§2.2) — one DC pair at a time, as existing GDA
//!   systems do; cheap but blind to runtime contention.
//! * **static-simultaneous** (§2.2) — all pairs at once; accurate but
//!   expensive (the paper's Table 2 cost bottleneck).
//! * **stable runtime** (§2.2) — ≥20 s of simultaneous monitoring; the
//!   ground truth that WANify's model predicts.
//! * **snapshot** (§2.2/§3.1) — a 1-second sample with observation noise;
//!   the cheap feature WANify feeds its Random Forest.
//!
//! Probes also report per-host metrics (memory, CPU, retransmissions) used
//! as prediction features (paper Table 3).

use crate::flow::FlowSpec;
use crate::grid::{BwMatrix, ConnMatrix};
use crate::sim::{NetSim, RateScratch};
use crate::stats::clamp;
use crate::topology::DcId;
use rand::Rng;

/// Node-level metrics sampled during a probe (paper Table 3 features).
#[derive(Debug, Clone, PartialEq)]
pub struct HostMetrics {
    /// Memory utilization in `[0, 1]` — each connection pins buffers.
    pub mem_util: f64,
    /// CPU load in `[0, 1]` — grows with throughput and connection count.
    pub cpu_load: f64,
    /// TCP retransmissions observed during the probe second.
    pub retransmissions: u32,
}

/// A bandwidth matrix plus the host metrics observed while measuring it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReading {
    /// Measured throughput per directed DC pair, in Mbps.
    pub bw: BwMatrix,
    /// Metrics for each host, indexed by `DcId`.
    pub hosts: Vec<HostMetrics>,
}

impl NetSim {
    /// Builds the all-to-all single-flow set implied by `conns`.
    fn all_pair_flows(&self, conns: &ConnMatrix) -> Vec<FlowSpec> {
        let n = self.topology().len();
        let mut flows = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j && conns.get(i, j) > 0 {
                    flows.push(FlowSpec::new(DcId(i), DcId(j), conns.get(i, j)));
                }
            }
        }
        flows
    }

    /// Rates for an all-to-all measurement round under `conns`, solved
    /// through a caller-held [`RateScratch`] so repeated rounds (the
    /// stable-runtime probe solves one per second) stay allocation-free.
    fn measure_round(&self, conns: &ConnMatrix, scratch: &mut RateScratch) -> BwMatrix {
        let flows = self.all_pair_flows(conns);
        let rates = self.allocate_rates_with(&flows, scratch);
        let n = self.topology().len();
        let mut bw = BwMatrix::new(n);
        for (f, &rate) in flows.iter().zip(rates) {
            bw.put(f.src, f.dst, rate);
        }
        bw
    }

    /// One isolated pair measurement through a caller-held scratch; the
    /// single definition of lone-iPerf semantics (one flow, one second).
    fn measure_pair_with(
        &mut self,
        src: DcId,
        dst: DcId,
        conns: u32,
        scratch: &mut RateScratch,
    ) -> f64 {
        let rate = self.allocate_rates_with(&[FlowSpec::new(src, dst, conns)], scratch)[0];
        self.advance(1.0);
        rate
    }

    /// Measures one directed pair in isolation with `conns` connections,
    /// like a lone iPerf run. Advances time by one second.
    pub fn measure_pair(&mut self, src: DcId, dst: DcId, conns: u32) -> f64 {
        let mut scratch = RateScratch::default();
        self.measure_pair_with(src, dst, conns, &mut scratch)
    }

    /// Static-independent probe: every directed pair measured alone with a
    /// single connection, sequentially (existing GDA systems' approach).
    pub fn measure_static_independent(&mut self) -> BwMatrix {
        let n = self.topology().len();
        let mut bw = BwMatrix::new(n);
        let mut scratch = RateScratch::default();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let rate = self.measure_pair_with(DcId(i), DcId(j), 1, &mut scratch);
                    bw.set(i, j, rate);
                }
            }
        }
        bw
    }

    /// Static-simultaneous probe: all pairs at once, single connection each.
    /// Advances time by one second.
    pub fn measure_static_simultaneous(&mut self) -> BwMatrix {
        let mut scratch = RateScratch::default();
        let bw = self.measure_round(&ConnMatrix::filled(self.topology().len(), 1), &mut scratch);
        self.advance(1.0);
        bw
    }

    /// Stable runtime probe: all pairs simultaneously under `conns`,
    /// averaged over `duration_s` seconds of evolving dynamics (the paper
    /// observes that ≥20 s is needed for stability, §2.2).
    pub fn measure_runtime(&mut self, conns: &ConnMatrix, duration_s: u32) -> ProbeReading {
        let n = self.topology().len();
        let secs = duration_s.max(1);
        let mut acc = BwMatrix::new(n);
        let mut scratch = RateScratch::default();
        for _ in 0..secs {
            let round = self.measure_round(conns, &mut scratch);
            for i in 0..n {
                for j in 0..n {
                    acc.set(i, j, acc.get(i, j) + round.get(i, j));
                }
            }
            self.advance(1.0);
        }
        let bw = acc.map(|v| v / f64::from(secs));
        let hosts = self.host_metrics(conns, &bw, 0.0);
        ProbeReading { bw, hosts }
    }

    /// Snapshot probe: one second of simultaneous measurement with
    /// observation noise — WANify's cheap model input (paper §3.1).
    pub fn snapshot(&mut self, conns: &ConnMatrix) -> ProbeReading {
        let noise = self.params().snapshot_noise;
        let mut scratch = RateScratch::default();
        let round = self.measure_round(conns, &mut scratch);
        let bw = {
            let rng = self.rng_mut();
            round.map(|v| {
                let eps: f64 = rng.gen_range(-1.0..1.0) * noise;
                (v * (1.0 + eps)).max(0.0)
            })
        };
        self.advance(1.0);
        let hosts = self.host_metrics(conns, &bw, noise);
        ProbeReading { bw, hosts }
    }

    /// Deterministic host metrics plus probe noise.
    fn host_metrics(&mut self, conns: &ConnMatrix, bw: &BwMatrix, noise: f64) -> Vec<HostMetrics> {
        let n = self.topology().len();
        let flows = self.all_pair_flows(conns);
        let host_conns = self.host_connection_counts(&flows);
        (0..n)
            .map(|h| {
                let dc = self.topology().dc(DcId(h));
                let budget = dc.conn_budget();
                let divisor = self.params().congestion_divisor(host_conns[h], budget);
                let egress: f64 = (0..n).filter(|&j| j != h).map(|j| bw.get(h, j)).sum();
                let ingress: f64 = (0..n).filter(|&i| i != h).map(|i| bw.get(i, h)).sum();
                let util = (egress / dc.egress_cap_mbps() + ingress / dc.ingress_cap_mbps()) / 2.0;
                // Each connection pins socket buffers; receive side dominates.
                let mem_base = 0.25
                    + 0.012 * f64::from(host_conns[h]) / f64::from(dc.vm_count)
                    + 0.2 * (ingress / dc.ingress_cap_mbps());
                let cpu_base =
                    0.15 + 0.006 * f64::from(host_conns[h]) / f64::from(dc.vm_count) + 0.45 * util;
                let retrans_base = 40.0 * (divisor - 1.0) + 2.0 * util;
                let jitter = {
                    let rng = self.rng_mut();
                    let j: f64 = rng.gen_range(-1.0..1.0);
                    j * noise
                };
                HostMetrics {
                    mem_util: clamp(mem_base * (1.0 + jitter), 0.0, 0.98),
                    cpu_load: clamp(cpu_base * (1.0 + jitter), 0.0, 1.0),
                    retransmissions: (retrans_base.max(0.0) * (1.0 + jitter)).round() as u32,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::Region;
    use crate::params::LinkModelParams;
    use crate::topology::Topology;
    use crate::vm::VmType;
    use crate::{paper_testbed, paper_testbed_n};

    fn sim8() -> NetSim {
        NetSim::new(paper_testbed(VmType::t2_medium()), LinkModelParams::frozen(), 11)
    }

    #[test]
    fn static_independent_matches_calibration_endpoints() {
        let mut sim = sim8();
        let bw = sim.measure_static_independent();
        let use_usw = bw.get(0, 1);
        let use_apse = bw.get(0, 3);
        assert!((1500.0..1900.0).contains(&use_usw), "US East→US West {use_usw}");
        assert!((100.0..150.0).contains(&use_apse), "US East→AP SE {use_apse}");
    }

    #[test]
    fn runtime_differs_from_static_under_contention() {
        let mut sim = sim8();
        let stat = sim.measure_static_independent();
        let runtime = sim.measure_runtime(&ConnMatrix::filled(8, 1), 20);
        let significant = stat.count_significant_diffs(&runtime.bw, 100.0);
        assert!(
            significant >= 6,
            "expected many significant static-vs-runtime gaps, got {significant}"
        );
        assert!(runtime.bw.min_off_diag() < stat.min_off_diag() + 1e-9);
    }

    #[test]
    fn snapshot_correlates_with_stable_runtime() {
        let topo = paper_testbed_n(VmType::t2_medium(), 5);
        let mut sim = NetSim::new(topo, LinkModelParams::default(), 5);
        let conns = ConnMatrix::filled(5, 1);
        let snap = sim.snapshot(&conns);
        let stable = sim.measure_runtime(&conns, 20);
        let xs: Vec<f64> = snap.bw.iter_pairs().map(|(_, _, v)| v).collect();
        let ys: Vec<f64> = stable.bw.iter_pairs().map(|(_, _, v)| v).collect();
        let r = crate::stats::pearson(&xs, &ys);
        assert!(r > 0.8, "snapshot/stable Pearson correlation {r} (paper: positive)");
    }

    #[test]
    fn host_metrics_within_bounds() {
        let mut sim = sim8();
        let reading = sim.measure_runtime(&ConnMatrix::filled(8, 8), 5);
        for h in &reading.hosts {
            assert!((0.0..=0.98).contains(&h.mem_util));
            assert!((0.0..=1.0).contains(&h.cpu_load));
        }
    }

    #[test]
    fn oversubscription_produces_retransmissions() {
        let mut sim = sim8();
        let calm = sim.measure_runtime(&ConnMatrix::filled(8, 1), 2);
        let flooded = sim.measure_runtime(&ConnMatrix::filled(8, 10), 2);
        let calm_total: u32 = calm.hosts.iter().map(|h| h.retransmissions).sum();
        let flooded_total: u32 = flooded.hosts.iter().map(|h| h.retransmissions).sum();
        assert!(flooded_total > calm_total, "flooded {flooded_total} vs calm {calm_total}");
    }

    #[test]
    fn measure_pair_is_isolated() {
        let topo = Topology::builder()
            .dc(Region::UsEast, VmType::t2_medium(), 1)
            .dc(Region::ApSoutheast1, VmType::t2_medium(), 1)
            .build()
            .unwrap();
        let mut sim = NetSim::new(topo, LinkModelParams::frozen(), 3);
        let one = sim.measure_pair(DcId(0), DcId(1), 1);
        let nine = sim.measure_pair(DcId(0), DcId(1), 9);
        assert!(nine > 6.0 * one);
    }

    #[test]
    fn probe_advances_simulated_time() {
        let mut sim = sim8();
        let t0 = sim.time_s();
        let _ = sim.measure_static_simultaneous();
        assert!(sim.time_s() > t0);
    }
}
