//! Calibrated parameters of the WAN link model.

/// Tunable constants of the link model.
///
/// Defaults are calibrated so that static-independent single-connection
/// probes reproduce the paper's Fig. 1 endpoints: ≈1700 Mbps between US East
/// and US West and ≈121 Mbps between US East and AP Southeast (Singapore).
///
/// The model is:
///
/// * `RTT(i,j) = rtt_base_ms + rtt_ms_per_mile · distance(i,j)`
/// * per-connection throughput ceiling `conn_cap(i,j) = window_k / RTT^rtt_exponent`
/// * a flow with `n` connections has ceiling `n · conn_cap` and competes for
///   shared NIC capacity with weight `n / RTT^rtt_exponent` (TCP RTT bias)
/// * a host whose total active connections exceed its budget `B` wastes
///   goodput: its usable NIC capacity is divided by
///   `1 + congestion_lambda · (conns/B − 1)`
/// * every directed region pair also has a backbone path capacity
///   `path_cap_mbps`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModelParams {
    /// Fixed RTT component in milliseconds (last-mile + stack latency).
    pub rtt_base_ms: f64,
    /// RTT growth per great-circle mile (fiber propagation + routing slack).
    pub rtt_ms_per_mile: f64,
    /// Numerator of the per-connection window limit, in Mbps · ms^exponent.
    pub window_k: f64,
    /// Exponent of the RTT penalty on the per-connection *window* ceiling
    /// (2 calibrates the Fig. 1 endpoints: 1700 Mbps nearby, 121 far).
    pub rtt_exponent: f64,
    /// Exponent of the RTT bias in *contention weight*. Deliberately below
    /// the window exponent: under contention, long-RTT flows lose share but
    /// not as steeply as their window limit falls with distance, so runtime
    /// bandwidth is a non-proportional reshuffling of static bandwidth —
    /// nearby links lose the most, ranks can flip (paper §2.2, Table 1).
    pub weight_rtt_exponent: f64,
    /// Backbone capacity per directed region pair, in Mbps.
    pub path_cap_mbps: f64,
    /// Goodput loss slope once a host exceeds its connection budget.
    pub congestion_lambda: f64,
    /// Relative amplitude of the Ornstein-Uhlenbeck bandwidth dynamics.
    pub dynamics_sigma: f64,
    /// Mean-reversion rate of the dynamics process (per second).
    pub dynamics_theta: f64,
    /// Quantization tick of the dynamics in seconds: OU steps fire and
    /// the piecewise components resample only at tick boundaries, which
    /// makes rate changes schedulable and lets the transfer loop coalesce
    /// epochs between them. 1 s (the default) is bit-compatible with the
    /// legacy per-second process; larger ticks (e.g. 30 s for fleet runs)
    /// trade temporal resolution for proportionally fewer fairness
    /// solves. Non-positive selects the legacy continuous (unschedulable)
    /// process.
    pub dynamics_tick_s: f64,
    /// Relative observation noise of a 1-second snapshot probe.
    pub snapshot_noise: f64,
    /// Multiplier on `conn_cap` for flows crossing cloud providers.
    pub cross_provider_factor: f64,
    /// Simulation step of [`crate::NetSim::run_transfers`] in seconds.
    /// Smaller steps resolve sub-second transfer differences; probes
    /// always use 1-second epochs. With frozen dynamics and no hook the
    /// transfer loop coalesces epochs between drain events, so a finer
    /// step costs accounting granularity, not extra fairness solves.
    pub epoch_dt_s: f64,
}

impl Default for LinkModelParams {
    fn default() -> Self {
        Self {
            rtt_base_ms: 2.0,
            rtt_ms_per_mile: 0.0205,
            window_k: 4.6e6,
            rtt_exponent: 2.0,
            weight_rtt_exponent: 1.7,
            path_cap_mbps: 4000.0,
            congestion_lambda: 0.4,
            dynamics_sigma: 0.06,
            dynamics_theta: 0.25,
            dynamics_tick_s: 1.0,
            snapshot_noise: 0.05,
            cross_provider_factor: 0.8,
            epoch_dt_s: 0.25,
        }
    }
}

impl LinkModelParams {
    /// Round-trip time in milliseconds for a link of `distance_miles`.
    pub fn rtt_ms(&self, distance_miles: f64) -> f64 {
        self.rtt_base_ms + self.rtt_ms_per_mile * distance_miles
    }

    /// Single-connection throughput ceiling in Mbps for a link of
    /// `distance_miles`, before NIC/path caps.
    pub fn conn_cap_mbps(&self, distance_miles: f64) -> f64 {
        self.window_k / self.rtt_ms(distance_miles).powf(self.rtt_exponent)
    }

    /// Contention weight of one connection on a link of `distance_miles`
    /// (TCP's RTT bias: long-RTT connections lose the bandwidth race).
    pub fn conn_weight(&self, distance_miles: f64) -> f64 {
        1.0 / self.rtt_ms(distance_miles).powf(self.weight_rtt_exponent)
    }

    /// Goodput divisor for a host running `conns` connections with budget
    /// `budget`: 1.0 while within budget, growing *quadratically* in the
    /// oversubscription ratio beyond it. Mild oversubscription (a WANify
    /// plan at ~2× budget) costs little; flooding every pair with uniform
    /// parallel connections (~5× budget) collapses goodput — the paper's
    /// observation that naive parallelism backfires (§2.2, Fig. 5).
    pub fn congestion_divisor(&self, conns: u32, budget: u32) -> f64 {
        if budget == 0 || conns <= budget {
            1.0
        } else {
            let over = f64::from(conns) / f64::from(budget) - 1.0;
            1.0 + self.congestion_lambda * over * over
        }
    }

    /// A params set with dynamics and snapshot noise disabled, for
    /// deterministic unit tests.
    pub fn frozen() -> Self {
        Self { dynamics_sigma: 0.0, snapshot_noise: 0.0, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_us_east_us_west() {
        // ~2,437 miles => RTT ~52 ms => ~1700 Mbps.
        let p = LinkModelParams::default();
        let cap = p.conn_cap_mbps(2437.0);
        assert!((1500.0..1900.0).contains(&cap), "got {cap}");
    }

    #[test]
    fn calibration_us_east_singapore() {
        // ~9,670 miles => RTT ~200 ms => ~115 Mbps (paper observed 121).
        let p = LinkModelParams::default();
        let cap = p.conn_cap_mbps(9670.0);
        assert!((100.0..145.0).contains(&cap), "got {cap}");
    }

    #[test]
    fn conn_cap_decreases_with_distance() {
        let p = LinkModelParams::default();
        assert!(p.conn_cap_mbps(1000.0) > p.conn_cap_mbps(5000.0));
    }

    #[test]
    fn congestion_divisor_is_one_within_budget() {
        let p = LinkModelParams::default();
        assert_eq!(p.congestion_divisor(8, 16), 1.0);
        assert_eq!(p.congestion_divisor(16, 16), 1.0);
        assert!(p.congestion_divisor(32, 16) > 1.0);
    }

    #[test]
    fn congestion_divisor_handles_zero_budget() {
        let p = LinkModelParams::default();
        assert_eq!(p.congestion_divisor(100, 0), 1.0);
    }

    #[test]
    fn frozen_disables_noise() {
        let p = LinkModelParams::frozen();
        assert_eq!(p.dynamics_sigma, 0.0);
        assert_eq!(p.snapshot_noise, 0.0);
    }
}
