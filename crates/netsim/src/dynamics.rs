//! Temporal WAN bandwidth dynamics.
//!
//! WAN bandwidth fluctuates on the scale of minutes (paper §2.2 citing the
//! IMC'21 WAN traffic study); WANify's local agents exist to track the
//! drift. Each directed region pair carries an independent
//! Ornstein-Uhlenbeck multiplier, mean-reverting to 1.0, that scales both
//! the per-connection ceiling and the backbone path capacity. Two optional
//! closed-form components — a diurnal sinusoid and a linear decay —
//! compose multiplicatively with the OU grid.
//!
//! # Tick quantization
//!
//! All evolution is quantized onto a configurable *tick* (`tick_s`,
//! default 1 s): OU steps fire and the deterministic components are
//! resampled only when accumulated time crosses a tick boundary, never
//! mid-tick. Between ticks every multiplier is constant, which makes rate
//! changes *schedulable*: [`Dynamics::next_change_after`] tells the
//! event-coalescing transfer loop exactly when the next change lands, so
//! live-dynamics runs can jump whole multi-epoch segments instead of
//! stepping every epoch. Crucially, tick crossings depend only on total
//! accumulated time, so `advance(k·dt)` and `k` calls of `advance(dt)`
//! fire the same OU steps and consume the same RNG draws — the invariant
//! behind the coalesced-vs-stepped bit parity. With `tick_s == 1` and
//! whole-second advances the trajectories are bit-identical to the legacy
//! per-second process.
//!
//! A non-positive `tick_s` selects the legacy continuous process (one OU
//! step of the advance's full width per call); it is unschedulable, so
//! [`crate::NetSim::coalescible`] reports `false` and the simulator steps
//! per epoch as before.

use crate::grid::Grid;
use crate::stats::{clamp, sample_standard_normal};
use rand::rngs::StdRng;
use rand::Rng;

/// Lower clamp of the dynamics multiplier.
const MULT_MIN: f64 = 0.45;
/// Upper clamp of the dynamics multiplier.
const MULT_MAX: f64 = 1.55;

/// Tolerance when testing whether accumulated time crosses a tick
/// boundary, mirroring the fault-boundary clip in `sim.rs`: targets that
/// land within `1e-9` s of a boundary count as crossing it, so chunked
/// and stepped advances agree even when `dt` is not exactly representable.
const TICK_EPS: f64 = 1e-9;

/// A diurnal bandwidth wave: `1 + amplitude · sin(2π (t + phase) / period)`,
/// sampled at tick boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Diurnal {
    amplitude: f64,
    period_s: f64,
    phase_s: f64,
}

impl Diurnal {
    fn factor(&self, t_s: f64) -> f64 {
        1.0 + self.amplitude * (std::f64::consts::TAU * (t_s + self.phase_s) / self.period_s).sin()
    }
}

/// A linear capacity decay: `max(1 − slope · t, floor)`, sampled at tick
/// boundaries. Once the floor is reached the component never changes
/// again, so a decay-only dynamics becomes fully coalescible.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Decay {
    slope_per_s: f64,
    floor: f64,
}

impl Decay {
    fn factor(&self, t_s: f64) -> f64 {
        (1.0 - self.slope_per_s * t_s).max(self.floor)
    }

    fn still_changing(&self, t_s: f64) -> bool {
        self.slope_per_s > 0.0 && 1.0 - self.slope_per_s * t_s > self.floor
    }
}

/// Per-directed-pair bandwidth multipliers: a tick-quantized
/// Ornstein-Uhlenbeck grid composed with optional closed-form piecewise
/// components (see the module docs).
#[derive(Debug, Clone)]
pub struct Dynamics {
    multipliers: Grid<f64>,
    sigma: f64,
    theta: f64,
    /// Quantization tick, seconds; non-positive = legacy continuous.
    tick_s: f64,
    /// Seconds accumulated toward the next tick boundary.
    acc_s: f64,
    /// Tick boundaries crossed since construction; `ticks_done · tick_s`
    /// is the model time the deterministic components are sampled at.
    ticks_done: u64,
    diurnal: Option<Diurnal>,
    decay: Option<Decay>,
    /// Product of the deterministic components, sampled at the last tick.
    det_factor: f64,
}

impl Dynamics {
    /// Creates dynamics for `n` data centers with OU parameters
    /// `sigma` (volatility) and `theta` (mean reversion per second),
    /// quantized onto a 1 s tick.
    pub fn new(n: usize, sigma: f64, theta: f64) -> Self {
        Self::with_tick(n, sigma, theta, 1.0)
    }

    /// Creates dynamics quantized onto an explicit tick. Larger ticks
    /// (e.g. 30 s for fleet runs) mean longer constant-rate segments and
    /// proportionally fewer fairness solves; `tick_s <= 0` selects the
    /// legacy continuous (unschedulable) process.
    pub fn with_tick(n: usize, sigma: f64, theta: f64, tick_s: f64) -> Self {
        Self {
            multipliers: Grid::filled(n, 1.0),
            sigma,
            theta,
            tick_s,
            acc_s: 0.0,
            ticks_done: 0,
            diurnal: None,
            decay: None,
            det_factor: 1.0,
        }
    }

    /// Installs a diurnal sinusoid component: the effective multiplier is
    /// scaled by `1 + amplitude · sin(2π (t + phase) / period)`, resampled
    /// at tick boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is not in `[0, 1)` (the factor must stay
    /// strictly positive — a zero multiplier would alias a fault-layer
    /// outage) or `period_s` is not positive, or if the dynamics run the
    /// legacy continuous process (`tick_s <= 0`).
    pub fn set_diurnal(&mut self, amplitude: f64, period_s: f64, phase_s: f64) {
        assert!((0.0..1.0).contains(&amplitude), "diurnal amplitude must be in [0, 1)");
        assert!(period_s > 0.0, "diurnal period must be positive");
        assert!(self.tick_s > 0.0, "piecewise components need a positive tick");
        self.diurnal = Some(Diurnal { amplitude, period_s, phase_s });
        self.resample_det();
    }

    /// Installs a linear decay component: the effective multiplier is
    /// scaled by `max(1 − slope · t, floor)`, resampled at tick
    /// boundaries. Once the floor is reached the component is inert.
    ///
    /// # Panics
    ///
    /// Panics if `slope_per_s` is negative, `floor` is not in `(0, 1]`,
    /// or the dynamics run the legacy continuous process (`tick_s <= 0`).
    pub fn set_decay(&mut self, slope_per_s: f64, floor: f64) {
        assert!(slope_per_s >= 0.0, "decay slope must be non-negative");
        assert!(floor > 0.0 && floor <= 1.0, "decay floor must be in (0, 1]");
        assert!(self.tick_s > 0.0, "piecewise components need a positive tick");
        self.decay = Some(Decay { slope_per_s, floor });
        self.resample_det();
    }

    /// Whether the dynamics are frozen (no OU volatility, no piecewise
    /// component): multipliers stay pinned at 1.0 and [`Dynamics::advance`]
    /// consumes no randomness.
    pub fn is_frozen(&self) -> bool {
        self.sigma == 0.0 && self.diurnal.is_none() && self.decay.is_none()
    }

    /// Whether rate changes are schedulable (tick-quantized): the
    /// precondition for the event-coalescing fast path under live
    /// dynamics. `false` only for the legacy continuous process.
    pub fn is_schedulable(&self) -> bool {
        self.tick_s > 0.0
    }

    /// Quantization tick in seconds (non-positive = legacy continuous).
    pub fn tick_s(&self) -> f64 {
        self.tick_s
    }

    /// The absolute time of the next multiplier change strictly after
    /// `t_s` — the next tick boundary — or `None` when nothing will ever
    /// change again (frozen, or a finished decay as the only component).
    ///
    /// Only meaningful for schedulable dynamics; the legacy continuous
    /// process returns `None` but is guarded off the fast path by
    /// [`Dynamics::is_schedulable`].
    pub fn next_change_after(&self, t_s: f64) -> Option<f64> {
        if !self.is_schedulable() {
            return None;
        }
        let model_t = self.ticks_done as f64 * self.tick_s;
        let still_changing = self.sigma != 0.0
            || self.diurnal.is_some()
            || self.decay.is_some_and(|d| d.still_changing(model_t));
        if !still_changing {
            return None;
        }
        Some(t_s + (self.tick_s - self.acc_s))
    }

    /// Current multiplier for the directed pair `(i, j)`: the OU grid
    /// value times the deterministic components' factor (1.0 when none
    /// are installed, so the pure-OU value is bit-unchanged).
    pub fn multiplier(&self, i: usize, j: usize) -> f64 {
        if i == j {
            1.0
        } else {
            self.multipliers.get(i, j) * self.det_factor
        }
    }

    /// Advances all pairs by `dt_s` seconds. Evolution fires only at tick
    /// boundaries crossed by the accumulated time, so chunked and stepped
    /// advances consume identical RNG draws at identical boundaries.
    /// Frozen dynamics consume no randomness at all.
    pub fn advance(&mut self, dt_s: f64, rng: &mut StdRng) {
        if self.is_frozen() {
            return;
        }
        if self.tick_s <= 0.0 {
            // Legacy continuous process: one OU step of the full width.
            self.ou_step(dt_s, rng);
            return;
        }
        self.acc_s += dt_s;
        while self.acc_s >= self.tick_s - TICK_EPS {
            self.acc_s -= self.tick_s;
            self.ticks_done += 1;
            if self.sigma != 0.0 {
                self.ou_step(self.tick_s, rng);
            }
            self.resample_det();
        }
    }

    /// Re-randomizes every pair around the mean, emulating a probe taken at
    /// a different time of day (the paper collects training data "at
    /// different times over a week", §5.1). The tick phase is preserved:
    /// a shuffle models a jump in wall-clock, not a tick-grid reset.
    pub fn shuffle_epoch(&mut self, rng: &mut StdRng) {
        if self.sigma == 0.0 {
            return;
        }
        // Stationary OU std-dev is sigma / sqrt(2 theta).
        let stationary_sd = self.sigma / (2.0 * self.theta).sqrt();
        for (_, _, m) in self.multipliers.iter_pairs_mut() {
            let v = 1.0 + stationary_sd * sample_standard_normal(rng);
            *m = clamp(v, MULT_MIN, MULT_MAX);
        }
        let _ = rng.gen::<u64>();
    }

    /// Snapshot of the OU multiplier grid (excluding the deterministic
    /// components' factor — see [`Dynamics::multiplier`]).
    pub fn multipliers(&self) -> &Grid<f64> {
        &self.multipliers
    }

    /// One OU step of width `dt_s` over every off-diagonal pair. The
    /// diagonal is skipped outright (no branch per cell), and cells are
    /// visited in the same row-major order as the legacy loop so RNG
    /// consumption is bit-compatible.
    fn ou_step(&mut self, dt_s: f64, rng: &mut StdRng) {
        let sqrt_dt = dt_s.sqrt();
        let (theta, sigma) = (self.theta, self.sigma);
        for (_, _, m) in self.multipliers.iter_pairs_mut() {
            let dm = theta * (1.0 - *m) * dt_s + sigma * sqrt_dt * sample_standard_normal(rng);
            *m = clamp(*m + dm, MULT_MIN, MULT_MAX);
        }
    }

    /// Resamples the deterministic components at the current tick time.
    fn resample_det(&mut self) {
        let t = self.ticks_done as f64 * self.tick_s;
        self.det_factor =
            self.diurnal.map_or(1.0, |d| d.factor(t)) * self.decay.map_or(1.0, |d| d.factor(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn frozen_dynamics_stay_at_one() {
        let mut d = Dynamics::new(4, 0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(1);
        d.advance(100.0, &mut rng);
        for (_, _, m) in d.multipliers().iter_pairs() {
            assert_eq!(m, 1.0);
        }
    }

    #[test]
    fn diagonal_is_always_one() {
        let mut d = Dynamics::new(3, 0.1, 0.25);
        let mut rng = StdRng::seed_from_u64(2);
        d.advance(5.0, &mut rng);
        assert_eq!(d.multiplier(1, 1), 1.0);
    }

    #[test]
    fn multipliers_stay_clamped() {
        let mut d = Dynamics::new(3, 0.5, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            d.advance(1.0, &mut rng);
        }
        for (_, _, m) in d.multipliers().iter_pairs() {
            assert!((MULT_MIN..=MULT_MAX).contains(&m), "multiplier {m} escaped clamp");
        }
    }

    #[test]
    fn mean_reversion_pulls_toward_one() {
        let mut d = Dynamics::new(2, 0.05, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        d.multipliers.set(0, 1, MULT_MIN);
        let mut sum = 0.0;
        for _ in 0..200 {
            d.advance(1.0, &mut rng);
            sum += d.multiplier(0, 1);
        }
        assert!(sum / 200.0 > 0.8, "long-run mean {} should revert toward 1", sum / 200.0);
    }

    #[test]
    fn frozen_dynamics_consume_no_randomness() {
        // The coalescing fast path requires frozen advances to leave
        // the RNG untouched — otherwise jumped and stepped runs would
        // diverge. shuffle_epoch must be equally inert.
        let mut d = Dynamics::new(4, 0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(7);
        let mut reference = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            d.advance(3.7, &mut rng);
            d.shuffle_epoch(&mut rng);
        }
        assert_eq!(rng.gen::<u64>(), reference.gen::<u64>(), "frozen dynamics burned RNG state");
    }

    #[test]
    fn deterministic_components_consume_no_randomness() {
        // Diurnal + decay evolve without drawing randomness: a sigma == 0
        // dynamics with piecewise components must track the same RNG
        // stream as an untouched one, even across many tick crossings.
        let mut d = Dynamics::new(3, 0.0, 0.25);
        d.set_diurnal(0.4, 120.0, 0.0);
        d.set_decay(0.001, 0.5);
        let mut rng = StdRng::seed_from_u64(21);
        let mut reference = StdRng::seed_from_u64(21);
        for _ in 0..50 {
            d.advance(7.25, &mut rng);
        }
        assert!(!d.is_frozen());
        assert_eq!(rng.gen::<u64>(), reference.gen::<u64>(), "deterministic models burned RNG");
    }

    #[test]
    fn is_frozen_is_consistent_after_shuffle_epoch() {
        let mut frozen = Dynamics::new(3, 0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(frozen.is_frozen());
        frozen.shuffle_epoch(&mut rng);
        assert!(frozen.is_frozen(), "shuffling must not unfreeze");
        for (_, _, m) in frozen.multipliers().iter_pairs() {
            assert_eq!(m, 1.0, "frozen multipliers stay pinned through a shuffle");
        }
        let mut live = Dynamics::new(3, 0.2, 0.25);
        assert!(!live.is_frozen());
        live.shuffle_epoch(&mut rng);
        assert!(!live.is_frozen(), "shuffling must not freeze live dynamics");
    }

    #[test]
    fn multipliers_stay_positive_under_long_advances() {
        // Volatile, weakly-reverting dynamics stepped for a long stretch:
        // the clamp floor must keep every multiplier strictly positive
        // (a zero multiplier would alias a fault-layer outage).
        let mut d = Dynamics::new(4, 0.8, 0.01);
        let mut rng = StdRng::seed_from_u64(9);
        for step in 0..2_000 {
            d.advance(if step % 3 == 0 { 10.0 } else { 0.25 }, &mut rng);
            for (i, j, m) in d.multipliers().iter_pairs() {
                assert!(m > 0.0, "multiplier ({i},{j}) = {m} not positive at step {step}");
                assert!((MULT_MIN..=MULT_MAX).contains(&m), "({i},{j}) = {m} escaped clamp");
            }
        }
    }

    #[test]
    fn shuffle_epoch_changes_values() {
        let mut d = Dynamics::new(3, 0.1, 0.25);
        let mut rng = StdRng::seed_from_u64(5);
        let before = d.multipliers().clone();
        d.shuffle_epoch(&mut rng);
        assert_ne!(&before, d.multipliers());
    }

    #[test]
    fn chunked_and_stepped_advances_are_bit_identical() {
        // The tick-quantization invariant behind coalescing parity:
        // advance(k·dt) must equal k advances of dt — same multipliers,
        // same RNG consumption — for tick-aligned and unaligned dts.
        for &(dt, chunks, tick) in
            &[(0.25, 8usize, 1.0), (0.25, 120, 30.0), (1.0, 7, 5.0), (0.1, 30, 0.7)]
        {
            let mut stepped = Dynamics::with_tick(3, 0.2, 0.3, tick);
            let mut jumped = stepped.clone();
            let mut rng_a = StdRng::seed_from_u64(31);
            let mut rng_b = StdRng::seed_from_u64(31);
            for _ in 0..chunks {
                stepped.advance(dt, &mut rng_a);
            }
            jumped.advance(chunks as f64 * dt, &mut rng_b);
            for (i, j, m) in stepped.multipliers().iter_pairs() {
                assert_eq!(
                    m.to_bits(),
                    jumped.multipliers().get(i, j).to_bits(),
                    "({i},{j}) diverged at dt={dt} tick={tick}"
                );
            }
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "RNG streams diverged");
        }
    }

    #[test]
    fn next_change_after_tracks_the_tick_grid() {
        let mut d = Dynamics::with_tick(3, 0.1, 0.25, 30.0);
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(d.next_change_after(0.0), Some(30.0));
        d.advance(12.5, &mut rng);
        assert_eq!(d.next_change_after(12.5), Some(12.5 + 17.5));
        d.advance(17.5, &mut rng); // crosses the first tick exactly
        assert_eq!(d.next_change_after(30.0), Some(60.0));
        // Frozen dynamics never change.
        let frozen = Dynamics::new(3, 0.0, 0.25);
        assert_eq!(frozen.next_change_after(5.0), None);
        // The legacy continuous process is unschedulable.
        let continuous = Dynamics::with_tick(3, 0.1, 0.25, 0.0);
        assert!(!continuous.is_schedulable());
        assert_eq!(continuous.next_change_after(0.0), None);
    }

    #[test]
    fn finished_decay_becomes_fully_coalescible() {
        // A decay-only dynamics changes until the floor, then never again:
        // next_change_after must flip to None so coalescing can jump to
        // the drain horizon.
        let mut d = Dynamics::with_tick(2, 0.0, 0.25, 10.0);
        d.set_decay(0.01, 0.6); // floor reached at t = 40
        let mut rng = StdRng::seed_from_u64(12);
        assert!(d.next_change_after(0.0).is_some());
        d.advance(50.0, &mut rng);
        assert_eq!(d.multiplier(0, 1), 0.6);
        assert_eq!(d.next_change_after(50.0), None, "a floored decay never changes again");
    }

    #[test]
    fn diurnal_component_scales_the_multiplier() {
        let mut d = Dynamics::with_tick(2, 0.0, 0.25, 25.0);
        d.set_diurnal(0.5, 100.0, 0.0);
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(d.multiplier(0, 1), 1.0, "sin(0) = 0 at t = 0");
        d.advance(25.0, &mut rng); // quarter period: sin = 1
        assert!((d.multiplier(0, 1) - 1.5).abs() < 1e-12, "got {}", d.multiplier(0, 1));
        d.advance(50.0, &mut rng); // three quarters: sin = -1
        assert!((d.multiplier(0, 1) - 0.5).abs() < 1e-12, "got {}", d.multiplier(0, 1));
        assert!(d.multiplier(0, 1) > 0.0);
    }

    // Regression fence for the quantization refactor: with the default
    // 1 s tick, whole-second advances reproduce the legacy per-second OU
    // process bit-for-bit — including shuffle_epoch interleavings — for
    // any seed.
    fn legacy_reference(n: usize, sigma: f64, theta: f64, ops: &[bool], seed: u64) -> Grid<f64> {
        let mut grid = Grid::filled(n, 1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for &shuffle in ops {
            if shuffle {
                let stationary_sd = sigma / (2.0 * theta).sqrt();
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let m = 1.0 + stationary_sd * sample_standard_normal(&mut rng);
                        grid.set(i, j, clamp(m, MULT_MIN, MULT_MAX));
                    }
                }
                let _ = rng.gen::<u64>();
            } else {
                let dt_s = 1.0f64;
                let sqrt_dt = dt_s.sqrt();
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let m = grid.get(i, j);
                        let dm = theta * (1.0 - m) * dt_s
                            + sigma * sqrt_dt * sample_standard_normal(&mut rng);
                        grid.set(i, j, clamp(m + dm, MULT_MIN, MULT_MAX));
                    }
                }
            }
        }
        grid
    }

    proptest! {
        #[test]
        fn unit_tick_reproduces_legacy_per_second_trajectories(
            seed in 0u64..1_000_000,
            sigma in 0.01f64..0.5,
            theta in 0.05f64..0.9,
            ops in proptest::collection::vec((0.0f64..1.0).prop_map(|x| x < 0.2), 1..60),
        ) {
            let n = 3;
            let mut d = Dynamics::new(n, sigma, theta);
            let mut rng = StdRng::seed_from_u64(seed);
            for &shuffle in &ops {
                if shuffle {
                    d.shuffle_epoch(&mut rng);
                } else {
                    d.advance(1.0, &mut rng);
                }
            }
            let reference = legacy_reference(n, sigma, theta, &ops, seed);
            for (i, j, m) in d.multipliers().iter_pairs() {
                prop_assert_eq!(
                    m.to_bits(),
                    reference.get(i, j).to_bits(),
                    "({},{}) diverged from the legacy process", i, j
                );
            }
        }
    }
}
