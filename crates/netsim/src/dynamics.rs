//! Temporal WAN bandwidth dynamics.
//!
//! WAN bandwidth fluctuates on the scale of minutes (paper §2.2 citing the
//! IMC'21 WAN traffic study); WANify's local agents exist to track the
//! drift. Each directed region pair carries an independent
//! Ornstein-Uhlenbeck multiplier, mean-reverting to 1.0, that scales both
//! the per-connection ceiling and the backbone path capacity.

use crate::grid::Grid;
use crate::stats::{clamp, sample_standard_normal};
use rand::rngs::StdRng;
use rand::Rng;

/// Lower clamp of the dynamics multiplier.
const MULT_MIN: f64 = 0.45;
/// Upper clamp of the dynamics multiplier.
const MULT_MAX: f64 = 1.55;

/// Per-directed-pair Ornstein-Uhlenbeck bandwidth multipliers.
#[derive(Debug, Clone)]
pub struct Dynamics {
    multipliers: Grid<f64>,
    sigma: f64,
    theta: f64,
}

impl Dynamics {
    /// Creates dynamics for `n` data centers with OU parameters
    /// `sigma` (volatility) and `theta` (mean reversion per second).
    pub fn new(n: usize, sigma: f64, theta: f64) -> Self {
        Self { multipliers: Grid::filled(n, 1.0), sigma, theta }
    }

    /// Whether the dynamics are frozen (`sigma == 0`): multipliers stay
    /// pinned at 1.0 and [`Dynamics::advance`] consumes no randomness —
    /// the precondition for `run_transfers`' event-coalescing fast path.
    pub fn is_frozen(&self) -> bool {
        self.sigma == 0.0
    }

    /// Current multiplier for the directed pair `(i, j)`.
    pub fn multiplier(&self, i: usize, j: usize) -> f64 {
        if i == j {
            1.0
        } else {
            self.multipliers.get(i, j)
        }
    }

    /// Advances all pairs by `dt_s` seconds of OU evolution.
    pub fn advance(&mut self, dt_s: f64, rng: &mut StdRng) {
        if self.sigma == 0.0 {
            return;
        }
        let n = self.multipliers.len();
        let sqrt_dt = dt_s.sqrt();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let m = self.multipliers.get(i, j);
                let dm = self.theta * (1.0 - m) * dt_s
                    + self.sigma * sqrt_dt * sample_standard_normal(rng);
                self.multipliers.set(i, j, clamp(m + dm, MULT_MIN, MULT_MAX));
            }
        }
    }

    /// Re-randomizes every pair around the mean, emulating a probe taken at
    /// a different time of day (the paper collects training data "at
    /// different times over a week", §5.1).
    pub fn shuffle_epoch(&mut self, rng: &mut StdRng) {
        if self.sigma == 0.0 {
            return;
        }
        let n = self.multipliers.len();
        // Stationary OU std-dev is sigma / sqrt(2 theta).
        let stationary_sd = self.sigma / (2.0 * self.theta).sqrt();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let m = 1.0 + stationary_sd * sample_standard_normal(rng);
                self.multipliers.set(i, j, clamp(m, MULT_MIN, MULT_MAX));
            }
        }
        let _ = rng.gen::<u64>();
    }

    /// Snapshot of the multiplier grid.
    pub fn multipliers(&self) -> &Grid<f64> {
        &self.multipliers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn frozen_dynamics_stay_at_one() {
        let mut d = Dynamics::new(4, 0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(1);
        d.advance(100.0, &mut rng);
        for (_, _, m) in d.multipliers().iter_pairs() {
            assert_eq!(m, 1.0);
        }
    }

    #[test]
    fn diagonal_is_always_one() {
        let mut d = Dynamics::new(3, 0.1, 0.25);
        let mut rng = StdRng::seed_from_u64(2);
        d.advance(5.0, &mut rng);
        assert_eq!(d.multiplier(1, 1), 1.0);
    }

    #[test]
    fn multipliers_stay_clamped() {
        let mut d = Dynamics::new(3, 0.5, 0.05);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            d.advance(1.0, &mut rng);
        }
        for (_, _, m) in d.multipliers().iter_pairs() {
            assert!((MULT_MIN..=MULT_MAX).contains(&m), "multiplier {m} escaped clamp");
        }
    }

    #[test]
    fn mean_reversion_pulls_toward_one() {
        let mut d = Dynamics::new(2, 0.05, 0.5);
        let mut rng = StdRng::seed_from_u64(4);
        d.multipliers.set(0, 1, MULT_MIN);
        let mut sum = 0.0;
        for _ in 0..200 {
            d.advance(1.0, &mut rng);
            sum += d.multiplier(0, 1);
        }
        assert!(sum / 200.0 > 0.8, "long-run mean {} should revert toward 1", sum / 200.0);
    }

    #[test]
    fn frozen_dynamics_consume_no_randomness() {
        // The coalescing fast path requires sigma == 0 advances to leave
        // the RNG untouched — otherwise jumped and stepped runs would
        // diverge. shuffle_epoch must be equally inert.
        let mut d = Dynamics::new(4, 0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(7);
        let mut reference = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            d.advance(3.7, &mut rng);
            d.shuffle_epoch(&mut rng);
        }
        assert_eq!(rng.gen::<u64>(), reference.gen::<u64>(), "frozen dynamics burned RNG state");
    }

    #[test]
    fn is_frozen_is_consistent_after_shuffle_epoch() {
        let mut frozen = Dynamics::new(3, 0.0, 0.25);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(frozen.is_frozen());
        frozen.shuffle_epoch(&mut rng);
        assert!(frozen.is_frozen(), "shuffling must not unfreeze");
        for (_, _, m) in frozen.multipliers().iter_pairs() {
            assert_eq!(m, 1.0, "frozen multipliers stay pinned through a shuffle");
        }
        let mut live = Dynamics::new(3, 0.2, 0.25);
        assert!(!live.is_frozen());
        live.shuffle_epoch(&mut rng);
        assert!(!live.is_frozen(), "shuffling must not freeze live dynamics");
    }

    #[test]
    fn multipliers_stay_positive_under_long_advances() {
        // Volatile, weakly-reverting dynamics stepped for a long stretch:
        // the clamp floor must keep every multiplier strictly positive
        // (a zero multiplier would alias a fault-layer outage).
        let mut d = Dynamics::new(4, 0.8, 0.01);
        let mut rng = StdRng::seed_from_u64(9);
        for step in 0..2_000 {
            d.advance(if step % 3 == 0 { 10.0 } else { 0.25 }, &mut rng);
            for (i, j, m) in d.multipliers().iter_pairs() {
                assert!(m > 0.0, "multiplier ({i},{j}) = {m} not positive at step {step}");
                assert!((MULT_MIN..=MULT_MAX).contains(&m), "({i},{j}) = {m} escaped clamp");
            }
        }
    }

    #[test]
    fn shuffle_epoch_changes_values() {
        let mut d = Dynamics::new(3, 0.1, 0.25);
        let mut rng = StdRng::seed_from_u64(5);
        let before = d.multipliers().clone();
        d.shuffle_epoch(&mut rng);
        assert_ne!(&before, d.multipliers());
    }
}
