//! Geographic coordinates of cloud regions and great-circle distances.
//!
//! The WANify prediction model uses the physical distance between VMs as a
//! primary feature (paper §3.1, Table 3: `Dij`), derived from the
//! geo-coordinates of the VMs' regions.

/// A point on the globe in decimal degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat_deg: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Creates a new point.
    ///
    /// # Examples
    ///
    /// ```
    /// use wanify_netsim::GeoPoint;
    /// let omaha = GeoPoint::new(41.26, -95.93);
    /// assert!(omaha.lat_deg > 0.0);
    /// ```
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        Self { lat_deg, lon_deg }
    }
}

/// Mean Earth radius in miles.
const EARTH_RADIUS_MILES: f64 = 3958.8;

/// Great-circle distance between two points in miles (haversine formula).
///
/// # Examples
///
/// ```
/// use wanify_netsim::{haversine_miles, Region};
/// let d = haversine_miles(Region::UsEast.location(), Region::UsWest.location());
/// assert!((2000.0..3000.0).contains(&d), "cross-US distance, got {d}");
/// ```
pub fn haversine_miles(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_deg.to_radians(), a.lon_deg.to_radians());
    let (lat2, lon2) = (b.lat_deg.to_radians(), b.lon_deg.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_MILES * h.sqrt().asin()
}

/// Cloud regions used by the paper's testbeds.
///
/// The first eight are the AWS regions of Fig. 1; [`Region::GcpUsCentral`]
/// supports the multi-cloud refactoring experiments of §3.3.3/§5.8.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// US East (North Virginia).
    UsEast,
    /// US West (North California).
    UsWest,
    /// AP South (Mumbai).
    ApSouth,
    /// AP Southeast (Singapore).
    ApSoutheast1,
    /// AP Southeast 2 (Sydney).
    ApSoutheast2,
    /// AP Northeast (Tokyo).
    ApNortheast,
    /// EU West (Ireland).
    EuWest,
    /// SA East (São Paulo).
    SaEast,
    /// GCP us-central1 (Iowa) — used for multi-cloud experiments.
    GcpUsCentral,
}

impl Region {
    /// The eight AWS regions in the order the paper lists them (Fig. 1).
    pub fn paper_order() -> [Region; 8] {
        [
            Region::UsEast,
            Region::UsWest,
            Region::ApSouth,
            Region::ApSoutheast1,
            Region::ApSoutheast2,
            Region::ApNortheast,
            Region::EuWest,
            Region::SaEast,
        ]
    }

    /// Approximate geo-coordinates of the region's data-center campus.
    pub fn location(self) -> GeoPoint {
        match self {
            Region::UsEast => GeoPoint::new(38.95, -77.45),
            Region::UsWest => GeoPoint::new(37.35, -121.95),
            Region::ApSouth => GeoPoint::new(19.08, 72.88),
            Region::ApSoutheast1 => GeoPoint::new(1.35, 103.82),
            Region::ApSoutheast2 => GeoPoint::new(-33.87, 151.21),
            Region::ApNortheast => GeoPoint::new(35.68, 139.69),
            Region::EuWest => GeoPoint::new(53.35, -6.26),
            Region::SaEast => GeoPoint::new(-23.55, -46.63),
            Region::GcpUsCentral => GeoPoint::new(41.26, -95.86),
        }
    }

    /// Human-readable name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Region::UsEast => "US East",
            Region::UsWest => "US West",
            Region::ApSouth => "AP South",
            Region::ApSoutheast1 => "AP SE",
            Region::ApSoutheast2 => "AP SE-2",
            Region::ApNortheast => "AP NE",
            Region::EuWest => "EU West",
            Region::SaEast => "SA East",
            Region::GcpUsCentral => "GCP US Central",
        }
    }

    /// Cloud provider operating the region.
    pub fn provider(self) -> Provider {
        match self {
            Region::GcpUsCentral => Provider::Gcp,
            _ => Provider::Aws,
        }
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Cloud provider of a region; bandwidth between providers is adjusted by
/// WANify's refactoring vector (paper §3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// Amazon Web Services.
    Aws,
    /// Google Cloud Platform.
    Gcp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        let p = Region::UsEast.location();
        assert!(haversine_miles(p, p).abs() < 1e-9);
    }

    #[test]
    fn haversine_symmetry() {
        let a = Region::UsEast.location();
        let b = Region::ApSoutheast1.location();
        let d1 = haversine_miles(a, b);
        let d2 = haversine_miles(b, a);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn us_east_to_singapore_is_farther_than_us_west() {
        let use_ = Region::UsEast.location();
        let usw = Region::UsWest.location();
        let sin = Region::ApSoutheast1.location();
        assert!(haversine_miles(use_, sin) > haversine_miles(use_, usw) * 3.0);
    }

    #[test]
    fn us_east_singapore_distance_plausible() {
        let d = haversine_miles(Region::UsEast.location(), Region::ApSoutheast1.location());
        assert!((9000.0..10500.0).contains(&d), "got {d}");
    }

    #[test]
    fn paper_order_is_unique() {
        let regions = Region::paper_order();
        for (i, a) in regions.iter().enumerate() {
            for b in regions.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Region::ApSoutheast1.to_string(), "AP SE");
        assert_eq!(Region::SaEast.to_string(), "SA East");
    }

    #[test]
    fn providers() {
        assert_eq!(Region::UsEast.provider(), Provider::Aws);
        assert_eq!(Region::GcpUsCentral.provider(), Provider::Gcp);
    }
}
