//! Square matrices keyed by data-center pairs.
//!
//! WANify represents both predicted bandwidth and optimized connection
//! counts as N×N matrices where cell `(i, j)` describes the directed link
//! from DC `i` to DC `j` (paper §2.3). [`Grid`] is the shared container;
//! [`BwMatrix`] and [`ConnMatrix`] are the two aliases used throughout.

use crate::topology::DcId;

/// A dense square matrix over data-center pairs.
///
/// The diagonal describes intra-DC values which, per the paper's system
/// model (§2.1), are never WAN-limited; most consumers use the
/// `*_off_diag` helpers that skip it.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<T> {
    n: usize,
    data: Vec<T>,
}

/// Directed bandwidth matrix in Mbps.
pub type BwMatrix = Grid<f64>;
/// Directed parallel-connection-count matrix.
pub type ConnMatrix = Grid<u32>;

impl<T: Copy + Default> Grid<T> {
    /// Creates an `n × n` grid filled with `T::default()`.
    ///
    /// `n == 0` yields the empty grid: every aggregate helper returns its
    /// identity and `iter_pairs` is empty.
    pub fn new(n: usize) -> Self {
        Self { n, data: vec![T::default(); n * n] }
    }

    /// Creates an `n × n` grid filled with `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        Self { n, data: vec![fill; n * n] }
    }

    /// Builds a grid from a closure over `(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut g = Self::new(n);
        for i in 0..n {
            for j in 0..n {
                g.set(i, j, f(i, j));
            }
        }
        g
    }

    /// Builds a grid from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a perfect square matching `n * n`.
    pub fn from_rows(n: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must contain n*n cells");
        Self { n, data }
    }

    /// Number of rows (== columns == data centers).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the grid has zero rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of bounds for {}", self.n);
        self.data[i * self.n + j]
    }

    /// Sets the value at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of bounds for {}", self.n);
        self.data[i * self.n + j] = v;
    }

    /// Value for a directed DC pair.
    pub fn at(&self, src: DcId, dst: DcId) -> T {
        self.get(src.0, dst.0)
    }

    /// Sets the value for a directed DC pair.
    pub fn put(&mut self, src: DcId, dst: DcId, v: T) {
        self.set(src.0, dst.0, v);
    }

    /// Iterates over all directed off-diagonal pairs `(i, j, value)`.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        let n = self.n;
        (0..n)
            .flat_map(move |i| (0..n).filter(move |&j| j != i).map(move |j| (i, j, self.get(i, j))))
    }

    /// Iterates mutably over all directed off-diagonal pairs
    /// `(i, j, &mut value)`, in the same row-major order as
    /// [`Grid::iter_pairs`] — consumers that draw randomness per cell
    /// (the OU dynamics) rely on that order being identical.
    pub fn iter_pairs_mut(&mut self) -> impl Iterator<Item = (usize, usize, &mut T)> {
        let n = self.n;
        self.data.iter_mut().enumerate().filter_map(move |(idx, v)| {
            let (i, j) = (idx / n, idx % n);
            (i != j).then_some((i, j, v))
        })
    }

    /// Maps every cell through `f`, producing a new grid.
    pub fn map<U: Copy + Default>(&self, mut f: impl FnMut(T) -> U) -> Grid<U> {
        Grid::from_fn(self.n, |i, j| f(self.get(i, j)))
    }

    /// Row `i` as a vector.
    pub fn row(&self, i: usize) -> Vec<T> {
        (0..self.n).map(|j| self.get(i, j)).collect()
    }

    /// Row-major view of the underlying data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl Grid<f64> {
    /// Minimum off-diagonal value — the paper's "minimum BW of the cluster".
    ///
    /// Returns `f64::INFINITY` for a 1×1 grid (no off-diagonal cells).
    pub fn min_off_diag(&self) -> f64 {
        self.iter_pairs().map(|(_, _, v)| v).fold(f64::INFINITY, f64::min)
    }

    /// Maximum off-diagonal value — the strongest WAN link.
    pub fn max_off_diag(&self) -> f64 {
        self.iter_pairs().map(|(_, _, v)| v).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean of the off-diagonal values.
    pub fn mean_off_diag(&self) -> f64 {
        let n = self.n;
        if n < 2 {
            return 0.0;
        }
        let sum: f64 = self.iter_pairs().map(|(_, _, v)| v).sum();
        sum / (n * (n - 1)) as f64
    }

    /// Mean of the off-diagonal values of row `i` — WANify's throttling
    /// threshold `T` for a source DC (paper §3.2.2).
    pub fn row_mean_off_diag(&self, i: usize) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: f64 = (0..self.n).filter(|&j| j != i).map(|j| self.get(i, j)).sum();
        sum / (self.n - 1) as f64
    }

    /// Count of directed off-diagonal pairs whose absolute difference from
    /// `other` exceeds `threshold` — the paper's "significant difference"
    /// metric (>100 Mbps; Table 1, Fig. 11).
    ///
    /// # Panics
    ///
    /// Panics if the grids have different sizes.
    pub fn count_significant_diffs(&self, other: &Grid<f64>, threshold: f64) -> usize {
        assert_eq!(self.n, other.n, "grids must have matching dimensions");
        self.iter_pairs().filter(|&(i, j, v)| (v - other.get(i, j)).abs() > threshold).count()
    }

    /// Renders the grid as an aligned text table with row/column labels.
    pub fn render(&self, labels: &[String]) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>12}", ""));
        for j in 0..self.n {
            let label = labels.get(j).map(String::as_str).unwrap_or("?");
            out.push_str(&format!("{label:>12}"));
        }
        out.push('\n');
        for i in 0..self.n {
            let label = labels.get(i).map(String::as_str).unwrap_or("?");
            out.push_str(&format!("{label:>12}"));
            for j in 0..self.n {
                out.push_str(&format!("{:>12.1}", self.get(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

impl Grid<u32> {
    /// Total number of off-diagonal connections in the matrix.
    pub fn total_off_diag(&self) -> u64 {
        self.iter_pairs().map(|(_, _, v)| u64::from(v)).sum()
    }

    /// Converts connection counts to `f64` for arithmetic with bandwidth.
    pub fn to_f64(&self) -> Grid<f64> {
        self.map(f64::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BwMatrix {
        BwMatrix::from_rows(3, vec![0.0, 400.0, 120.0, 380.0, 0.0, 130.0, 110.0, 125.0, 0.0])
    }

    #[test]
    fn min_max_off_diag_skip_diagonal() {
        let g = sample();
        assert_eq!(g.min_off_diag(), 110.0);
        assert_eq!(g.max_off_diag(), 400.0);
    }

    #[test]
    fn mean_off_diag() {
        let g = sample();
        let expected = (400.0 + 120.0 + 380.0 + 130.0 + 110.0 + 125.0) / 6.0;
        assert!((g.mean_off_diag() - expected).abs() < 1e-9);
    }

    #[test]
    fn row_mean_off_diag_is_throttle_threshold() {
        let g = sample();
        assert!((g.row_mean_off_diag(0) - 260.0).abs() < 1e-9);
    }

    #[test]
    fn significant_diff_counts() {
        let a = sample();
        let mut b = sample();
        b.set(0, 1, 100.0); // |400-100| = 300 > 100
        b.set(2, 0, 170.0); // |110-170| = 60  < 100
        assert_eq!(a.count_significant_diffs(&b, 100.0), 1);
    }

    #[test]
    fn iter_pairs_visits_all_off_diagonal() {
        let g = sample();
        assert_eq!(g.iter_pairs().count(), 6);
    }

    #[test]
    fn iter_pairs_mut_visits_the_same_cells_in_the_same_order() {
        let mut g = sample();
        let order: Vec<(usize, usize)> = g.iter_pairs().map(|(i, j, _)| (i, j)).collect();
        let mut_order: Vec<(usize, usize)> = g.iter_pairs_mut().map(|(i, j, _)| (i, j)).collect();
        assert_eq!(order, mut_order);
        for (_, _, v) in g.iter_pairs_mut() {
            *v += 1.0;
        }
        assert_eq!(g.get(0, 1), 401.0);
        assert_eq!(g.get(0, 0), 0.0, "the diagonal must be skipped");
    }

    #[test]
    fn conn_matrix_totals() {
        let c = ConnMatrix::from_rows(2, vec![1, 8, 3, 1]);
        assert_eq!(c.total_off_diag(), 11);
        assert_eq!(c.to_f64().get(0, 1), 8.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        sample().get(3, 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_rows_panics() {
        let _ = BwMatrix::from_rows(2, vec![0.0; 3]);
    }

    #[test]
    fn empty_grid_is_well_behaved() {
        let g = BwMatrix::new(0);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
        assert_eq!(g.iter_pairs().count(), 0);
        assert_eq!(g.min_off_diag(), f64::INFINITY);
        assert_eq!(g.max_off_diag(), f64::NEG_INFINITY);
        assert_eq!(g.mean_off_diag(), 0.0);
        assert_eq!(g.count_significant_diffs(&BwMatrix::filled(0, 1.0), 100.0), 0);
    }

    #[test]
    fn render_contains_labels() {
        let g = sample();
        let labels = vec!["A".to_string(), "B".to_string(), "C".to_string()];
        let s = g.render(&labels);
        assert!(s.contains('A') && s.contains("400.0"));
    }
}
