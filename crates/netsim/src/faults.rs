//! Deterministic fault injection: timestamped WAN misbehaviour.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s — DC outages and
//! recoveries, directed-link degradation and flap, straggler DCs, diurnal
//! bandwidth cycles — applied by [`crate::NetSim`] as first-class
//! rate-change events. Faults compose *multiplicatively* with the existing
//! rate model: the effective per-pair factor scales both the window-limit
//! ceiling and the backbone path capacity, exactly where
//! [`crate::Dynamics`] multipliers already apply, so a fault is
//! indistinguishable from (deterministic, scheduled) weather.
//!
//! Two properties make the layer safe to drop under the event-coalescing
//! machinery:
//!
//! 1. **No randomness.** Applying an event consumes no RNG, so a faulted
//!    run stays bit-identical across repeats and thread counts.
//! 2. **Epoch-aligned firing.** Events fire at the first *solve point* at
//!    or after their timestamp: the coalesced fast path clips its jumps at
//!    the next pending event ([`crate::NetSim::epochs_until_next_fault`]),
//!    so it applies each fault at the same simulated epoch as naive
//!    per-second stepping — the parity the `coalescing` suite pins down.
//!
//! A DC outage zeroes every WAN pair touching the DC (its NIC is gone);
//! intra-DC traffic (`src == dst`) is deliberately unaffected — the paper's
//! model only ever contends on the WAN.

use crate::grid::Grid;
use crate::topology::DcId;

/// What a single fault event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The DC's NIC capacity drops to zero: every WAN pair touching it
    /// stalls until a matching [`FaultKind::DcUp`].
    DcDown(DcId),
    /// Recovers a DC downed by [`FaultKind::DcDown`].
    DcUp(DcId),
    /// Sets the directed pair's bandwidth factor (1.0 = healthy,
    /// 0.25 = severe degradation, values > 1 are clamped at apply time).
    LinkFactor {
        /// Source DC of the degraded pair.
        src: DcId,
        /// Destination DC of the degraded pair.
        dst: DcId,
        /// New factor for the pair (clamped to `[0, 1]`).
        factor: f64,
    },
    /// Straggler DC: sets the factor on *every* WAN link touching the DC
    /// (both directions). 1.0 restores it.
    DcFactor {
        /// The straggling DC.
        dc: DcId,
        /// New factor for all its links (clamped to `[0, 1]`).
        factor: f64,
    },
    /// Sets the global bandwidth factor on every WAN pair — the diurnal
    /// wave knob (clamped to `[0, 1]`).
    GlobalFactor(f64),
}

/// One timestamped fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Absolute simulation time the event fires at, seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic timeline of fault events.
///
/// Built fluently; [`crate::NetSim::set_fault_schedule`] installs it.
/// Events are stably sorted by timestamp at installation, so ties fire in
/// insertion order.
///
/// # Examples
///
/// ```
/// use wanify_netsim::{DcId, FaultSchedule};
/// let faults = FaultSchedule::new()
///     .dc_outage(DcId(1), 60.0, 180.0)
///     .link_flap(DcId(0), DcId(2), 0.3, 30.0, 40.0, 5)
///     .straggler(DcId(2), 0.5, 400.0);
/// assert_eq!(faults.len(), 2 + 10 + 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events in the schedule.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Adds one event.
    #[must_use]
    pub fn at(mut self, at_s: f64, kind: FaultKind) -> Self {
        assert!(at_s.is_finite() && at_s >= 0.0, "fault time must be finite and non-negative");
        self.events.push(FaultEvent { at_s, kind });
        self
    }

    /// Full-DC outage: down at `from_s`, back up at `until_s`.
    #[must_use]
    pub fn dc_outage(self, dc: DcId, from_s: f64, until_s: f64) -> Self {
        assert!(until_s > from_s, "outage must end after it starts");
        self.at(from_s, FaultKind::DcDown(dc)).at(until_s, FaultKind::DcUp(dc))
    }

    /// Link flap: the directed pair degrades to `factor` for half of each
    /// `period_s`, recovers for the other half, repeated `cycles` times
    /// starting at `start_s`.
    #[must_use]
    pub fn link_flap(
        mut self,
        src: DcId,
        dst: DcId,
        factor: f64,
        start_s: f64,
        period_s: f64,
        cycles: usize,
    ) -> Self {
        assert!(period_s > 0.0, "flap period must be positive");
        for c in 0..cycles {
            let t = start_s + c as f64 * period_s;
            self = self
                .at(t, FaultKind::LinkFactor { src, dst, factor })
                .at(t + period_s / 2.0, FaultKind::LinkFactor { src, dst, factor: 1.0 });
        }
        self
    }

    /// Straggler DC: every link touching `dc` degrades to `factor` at
    /// `at_s` (pair with a later `straggler(dc, 1.0, ..)` to recover).
    #[must_use]
    pub fn straggler(self, dc: DcId, factor: f64, at_s: f64) -> Self {
        self.at(at_s, FaultKind::DcFactor { dc, factor })
    }

    /// Diurnal bandwidth wave: a stepwise raised-cosine global factor
    /// dipping to `trough_factor` at mid-period, `steps` steps per period,
    /// `cycles` periods starting at t = 0. Ends with an explicit restore
    /// to 1.0.
    #[must_use]
    pub fn diurnal(
        mut self,
        period_s: f64,
        trough_factor: f64,
        steps: usize,
        cycles: usize,
    ) -> Self {
        assert!(period_s > 0.0 && steps > 0, "diurnal wave needs a positive period and steps");
        let depth = 1.0 - trough_factor.clamp(0.0, 1.0);
        for c in 0..cycles {
            for s in 0..steps {
                let phase = (s as f64 + 0.5) / steps as f64; // step midpoint
                                                             // Raised cosine: 1 at the period edges, trough at phase 0.5.
                let factor = 1.0 - depth * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos());
                let t = (c as f64 + s as f64 / steps as f64) * period_s;
                self = self.at(t, FaultKind::GlobalFactor(factor));
            }
        }
        self.at(cycles as f64 * period_s, FaultKind::GlobalFactor(1.0))
    }
}

/// An installed schedule: sorted events, a cursor, and the live state.
#[derive(Debug, Clone)]
pub(crate) struct ActiveFaults {
    events: Vec<FaultEvent>,
    cursor: usize,
    pub(crate) state: FaultState,
}

impl ActiveFaults {
    /// Installs `schedule` over an `n`-DC topology: stable-sorts events by
    /// timestamp (ties fire in insertion order) and resets to healthy.
    ///
    /// # Panics
    ///
    /// Panics if any event names a DC outside the topology.
    pub(crate) fn install(schedule: FaultSchedule, n: usize) -> Self {
        for e in &schedule.events {
            let dc_ok = |dc: DcId| dc.0 < n;
            let ok = match e.kind {
                FaultKind::DcDown(dc) | FaultKind::DcUp(dc) => dc_ok(dc),
                FaultKind::LinkFactor { src, dst, .. } => dc_ok(src) && dc_ok(dst),
                FaultKind::DcFactor { dc, .. } => dc_ok(dc),
                FaultKind::GlobalFactor(_) => true,
            };
            assert!(ok, "fault event {e:?} names a DC outside the {n}-DC topology");
        }
        let mut events = schedule.events;
        events.sort_by(|a, b| a.at_s.total_cmp(&b.at_s));
        Self { events, cursor: 0, state: FaultState::healthy(n) }
    }

    /// Timestamp of the next unapplied event (`INFINITY` when exhausted).
    pub(crate) fn next_at_s(&self) -> f64 {
        self.events.get(self.cursor).map_or(f64::INFINITY, |e| e.at_s)
    }

    /// Applies every event due at or before `now_s` (with the same 1e-9
    /// tolerance the fleet timers use); returns how many fired.
    pub(crate) fn poll(&mut self, now_s: f64) -> usize {
        let mut applied = 0;
        while let Some(e) = self.events.get(self.cursor) {
            if e.at_s > now_s + 1e-9 {
                break;
            }
            self.state.apply(e.kind);
            self.cursor += 1;
            applied += 1;
        }
        applied
    }
}

/// Live fault state: what the schedule has done to the network so far.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    up: Vec<bool>,
    link: Grid<f64>,
    dc_factor: Vec<f64>,
    global: f64,
    /// Cached "anything differs from healthy" flag, recomputed on apply.
    degraded: bool,
}

impl FaultState {
    pub(crate) fn healthy(n: usize) -> Self {
        Self {
            up: vec![true; n],
            link: Grid::filled(n, 1.0),
            dc_factor: vec![1.0; n],
            global: 1.0,
            degraded: false,
        }
    }

    /// Effective bandwidth factor of the directed WAN pair `(i, j)`.
    /// Intra-DC traffic is never faulted.
    #[inline]
    pub(crate) fn factor(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        if !self.up[i] || !self.up[j] {
            return 0.0;
        }
        self.link.get(i, j) * self.dc_factor[i] * self.dc_factor[j] * self.global
    }

    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded
    }

    pub(crate) fn dc_is_up(&self, dc: usize) -> bool {
        self.up[dc]
    }

    pub(crate) fn dcs_up(&self) -> &[bool] {
        &self.up
    }

    /// Applies one event and refreshes the degraded flag.
    pub(crate) fn apply(&mut self, kind: FaultKind) {
        let n = self.up.len();
        match kind {
            FaultKind::DcDown(dc) => self.up[dc.0] = false,
            FaultKind::DcUp(dc) => self.up[dc.0] = true,
            FaultKind::LinkFactor { src, dst, factor } => {
                self.link.set(src.0, dst.0, factor.clamp(0.0, 1.0));
            }
            FaultKind::DcFactor { dc, factor } => {
                self.dc_factor[dc.0] = factor.clamp(0.0, 1.0);
            }
            FaultKind::GlobalFactor(factor) => self.global = factor.clamp(0.0, 1.0),
        }
        self.degraded = self.up.iter().any(|&u| !u)
            || self.global != 1.0
            || self.dc_factor.iter().any(|&f| f != 1.0)
            || (0..n).any(|i| (0..n).any(|j| self.link.get(i, j) != 1.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_zeroes_every_touching_pair_and_recovers() {
        let mut st = FaultState::healthy(3);
        st.apply(FaultKind::DcDown(DcId(1)));
        assert!(st.is_degraded());
        assert!(!st.dc_is_up(1));
        assert_eq!(st.factor(0, 1), 0.0);
        assert_eq!(st.factor(1, 2), 0.0);
        assert_eq!(st.factor(0, 2), 1.0, "pairs not touching the DC are unaffected");
        assert_eq!(st.factor(1, 1), 1.0, "intra-DC traffic is never faulted");
        st.apply(FaultKind::DcUp(DcId(1)));
        assert!(!st.is_degraded());
        assert_eq!(st.factor(0, 1), 1.0);
    }

    #[test]
    fn factors_compose_multiplicatively() {
        let mut st = FaultState::healthy(3);
        st.apply(FaultKind::LinkFactor { src: DcId(0), dst: DcId(1), factor: 0.5 });
        st.apply(FaultKind::DcFactor { dc: DcId(1), factor: 0.5 });
        st.apply(FaultKind::GlobalFactor(0.8));
        assert!((st.factor(0, 1) - 0.5 * 0.5 * 0.8).abs() < 1e-12);
        assert!((st.factor(2, 1) - 0.5 * 0.8).abs() < 1e-12, "dc factor hits both directions");
        assert!((st.factor(1, 2) - 0.5 * 0.8).abs() < 1e-12);
        assert!((st.factor(0, 2) - 0.8).abs() < 1e-12, "global factor hits every WAN pair");
        assert!(st.is_degraded());
    }

    #[test]
    fn restoring_every_factor_clears_degraded() {
        let mut st = FaultState::healthy(2);
        st.apply(FaultKind::LinkFactor { src: DcId(0), dst: DcId(1), factor: 0.25 });
        st.apply(FaultKind::GlobalFactor(0.9));
        assert!(st.is_degraded());
        st.apply(FaultKind::LinkFactor { src: DcId(0), dst: DcId(1), factor: 1.0 });
        st.apply(FaultKind::GlobalFactor(1.0));
        assert!(!st.is_degraded());
    }

    #[test]
    fn factors_clamp_to_unit_range() {
        let mut st = FaultState::healthy(2);
        st.apply(FaultKind::LinkFactor { src: DcId(0), dst: DcId(1), factor: 7.0 });
        assert_eq!(st.factor(0, 1), 1.0);
        st.apply(FaultKind::GlobalFactor(-2.0));
        assert_eq!(st.factor(0, 1), 0.0);
    }

    #[test]
    fn schedule_builders_expand_to_events() {
        let s = FaultSchedule::new()
            .dc_outage(DcId(0), 10.0, 20.0)
            .link_flap(DcId(0), DcId(1), 0.4, 0.0, 10.0, 3)
            .straggler(DcId(1), 0.6, 5.0)
            .diurnal(100.0, 0.5, 4, 2);
        assert_eq!(s.len(), 2 + 6 + 1 + 9);
        assert!(s.events().iter().all(|e| e.at_s >= 0.0));
    }

    #[test]
    fn diurnal_dips_to_the_trough_and_restores() {
        let s = FaultSchedule::new().diurnal(100.0, 0.5, 4, 1);
        let factors: Vec<f64> = s
            .events()
            .iter()
            .map(|e| match e.kind {
                FaultKind::GlobalFactor(f) => f,
                other => panic!("diurnal emits only GlobalFactor, got {other:?}"),
            })
            .collect();
        let min = factors.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min < 0.6, "wave must approach the 0.5 trough, got {min}");
        assert_eq!(*factors.last().unwrap(), 1.0, "wave must end restored");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_fault_time_is_rejected() {
        let _ = FaultSchedule::new().at(f64::INFINITY, FaultKind::GlobalFactor(0.5));
    }
}
