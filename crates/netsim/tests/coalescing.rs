//! Event-coalescing parity: `run_transfers`' fast path must be
//! bit-identical to naive per-second stepping.
//!
//! The reference stepper below is an independent implementation of the
//! documented transfer semantics (see `wanify_netsim::sim` module docs):
//! it re-solves weighted max-min fairness after **every** simulated
//! epoch through the public `allocate_rates`, and keeps the same
//! anchor-plus-served-epochs accounting the engine defines, so any
//! divergence in the engine's event-coalescing jump arithmetic shows up
//! as a bit-level report mismatch.

use proptest::prelude::*;
use wanify_netsim::sim::{MAX_EPOCHS, PAYLOAD_EPS_GB};
use wanify_netsim::{
    paper_testbed_n, BwMatrix, ConnMatrix, DcId, EpochCtx, EpochHook, FaultSchedule, FlowSpec,
    LinkModelParams, NetSim, Transfer, TransferReport, VmType,
};

fn frozen_sim(n: usize, seed: u64) -> NetSim {
    NetSim::new(paper_testbed_n(VmType::t3_nano(), n), LinkModelParams::frozen(), seed)
}

/// A sim with live OU dynamics quantized on `tick_s`. Probe noise is off so
/// the only RNG consumer is the dynamics process itself.
fn live_sim(n: usize, seed: u64, tick_s: f64) -> NetSim {
    let params =
        LinkModelParams { dynamics_tick_s: tick_s, snapshot_noise: 0.0, ..Default::default() };
    NetSim::new(paper_testbed_n(VmType::t3_nano(), n), params, seed)
}

struct RefPair {
    src: usize,
    dst: usize,
    remaining: f64,
    moved: f64,
    busy: f64,
    quota: f64,
    served: u64,
    active: bool,
}

impl RefPair {
    fn fold(&mut self, dt: f64) {
        if self.served > 0 {
            let m = self.served as f64;
            self.remaining -= m * self.quota;
            self.moved += m * self.quota;
            self.busy += m * dt;
            self.served = 0;
        }
    }
}

/// Naive per-second stepper: one fairness solve per epoch, forever.
fn reference_run(sim: &mut NetSim, transfers: &[Transfer], conns: &ConnMatrix) -> TransferReport {
    let n = sim.topology().len();
    let mut totals = BwMatrix::new(n);
    for t in transfers {
        assert!(t.gigabits >= 0.0);
        totals.put(t.src, t.dst, totals.at(t.src, t.dst) + t.gigabits);
    }
    let mut pairs: Vec<RefPair> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if totals.get(i, j) > PAYLOAD_EPS_GB {
                pairs.push(RefPair {
                    src: i,
                    dst: j,
                    remaining: totals.get(i, j),
                    moved: 0.0,
                    busy: 0.0,
                    quota: 0.0,
                    served: 0,
                    active: true,
                });
            }
        }
    }

    let dt = sim.params().epoch_dt_s.max(1e-3);
    let mut epochs = 0usize;
    while pairs.iter().any(|p| p.active) && epochs < MAX_EPOCHS {
        // Fault events fire at solve points; the per-epoch reference has
        // one per epoch (a no-op unless a schedule is installed).
        sim.poll_faults();
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .filter(|p| p.active)
            .map(|p| {
                let c = if p.src == p.dst { 1 } else { conns.get(p.src, p.dst).max(1) };
                FlowSpec::new(DcId(p.src), DcId(p.dst), c)
            })
            .collect();
        let rates = sim.allocate_rates(&flows);
        for (f, p) in pairs.iter_mut().filter(|p| p.active).enumerate() {
            let quota = rates[f] * dt / 1000.0;
            if quota != p.quota {
                p.fold(dt);
                p.quota = quota;
            }
            p.served += 1;
            if p.remaining - p.served as f64 * p.quota <= PAYLOAD_EPS_GB {
                p.busy += p.served as f64 * dt;
                p.moved += p.remaining;
                p.remaining = 0.0;
                p.served = 0;
                p.active = false;
            }
        }
        epochs += 1;
        sim.advance(dt);
    }

    let mut busy_s = BwMatrix::new(n);
    let mut moved_gb = BwMatrix::new(n);
    for p in &mut pairs {
        p.fold(dt);
        busy_s.set(p.src, p.dst, p.busy);
        moved_gb.set(p.src, p.dst, p.moved);
    }
    let achieved = BwMatrix::from_fn(n, |i, j| {
        let busy = busy_s.get(i, j);
        if busy > 0.0 {
            moved_gb.get(i, j) * 1000.0 / busy
        } else {
            0.0
        }
    });
    let min_pair = achieved
        .iter_pairs()
        .filter(|&(i, j, _)| totals.get(i, j) > PAYLOAD_EPS_GB)
        .map(|(_, _, v)| v)
        .fold(f64::INFINITY, f64::min);
    let mut egress = vec![0.0; n];
    for (i, _, gb) in moved_gb.iter_pairs() {
        egress[i] += gb;
    }
    let completion: Vec<f64> = transfers
        .iter()
        .map(|t| busy_s.at(t.src, t.dst).max(if t.gigabits > 0.0 { dt } else { 0.0 }))
        .collect();
    let makespan = completion.iter().copied().fold(0.0, f64::max);
    TransferReport {
        makespan_s: makespan,
        completion_s: completion,
        achieved_bw: achieved,
        min_pair_bw_mbps: if min_pair.is_finite() { min_pair } else { 0.0 },
        egress_gigabits: egress,
        epochs,
    }
}

/// Bit-level equality over every report field.
fn assert_reports_bit_identical(fast: &TransferReport, reference: &TransferReport) {
    assert_eq!(fast.epochs, reference.epochs, "epoch counts differ");
    assert_eq!(
        fast.makespan_s.to_bits(),
        reference.makespan_s.to_bits(),
        "makespan differs: {} vs {}",
        fast.makespan_s,
        reference.makespan_s
    );
    assert_eq!(
        fast.min_pair_bw_mbps.to_bits(),
        reference.min_pair_bw_mbps.to_bits(),
        "min pair bw differs"
    );
    let bits = |xs: &[f64]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&fast.completion_s), bits(&reference.completion_s), "completion times differ");
    assert_eq!(
        bits(&fast.egress_gigabits),
        bits(&reference.egress_gigabits),
        "egress accounting differs"
    );
    assert_eq!(
        bits(fast.achieved_bw.as_slice()),
        bits(reference.achieved_bw.as_slice()),
        "achieved bandwidth matrices differ"
    );
}

#[test]
fn coalesced_run_matches_reference_on_mixed_workload() {
    let transfers = [
        Transfer::new(DcId(0), DcId(1), 12.0),
        Transfer::new(DcId(0), DcId(2), 3.5),
        Transfer::new(DcId(2), DcId(1), 0.25),
        Transfer::new(DcId(1), DcId(1), 2.0), // intra-DC
        Transfer::new(DcId(2), DcId(0), 0.0), // empty
    ];
    let conns = ConnMatrix::from_fn(3, |i, j| if i == j { 1 } else { 1 + (i + 2 * j) as u32 });
    let fast = frozen_sim(3, 42).run_transfers(&transfers, &conns, None);
    let reference = reference_run(&mut frozen_sim(3, 42), &transfers, &conns);
    assert_reports_bit_identical(&fast, &reference);
}

#[test]
fn long_transfer_solve_count_is_bounded_by_drain_events() {
    // The slowest pair (US East → AP Southeast, 1 conn ≈ 121 Mbps) takes
    // well over 1000 simulated seconds; the fast path must still solve
    // fairness at most once per pair-drain event plus the initial solve.
    let transfers = [
        Transfer::new(DcId(0), DcId(3), 160.0), // >1000 s on the weak link
        Transfer::new(DcId(0), DcId(1), 240.0),
        Transfer::new(DcId(1), DcId(2), 100.0),
        Transfer::new(DcId(2), DcId(3), 40.0),
    ];
    let conns = ConnMatrix::filled(4, 1);
    let mut sim = frozen_sim(4, 7);
    let fast = sim.run_transfers(&transfers, &conns, None);
    let stats = sim.last_run_stats();

    assert!(stats.coalesced, "frozen no-hook run must take the fast path");
    let drain_events = transfers.len() as u64;
    assert!(
        stats.solves <= drain_events + 1,
        "{} solves for {} drain events",
        stats.solves,
        drain_events
    );
    let dt = sim.params().epoch_dt_s.max(1e-3);
    assert!(
        fast.makespan_s >= 1000.0,
        "workload too small to exercise coalescing: {} s",
        fast.makespan_s
    );
    assert!(fast.epochs as f64 * dt >= 1000.0);

    let reference = reference_run(&mut frozen_sim(4, 7), &transfers, &conns);
    assert_reports_bit_identical(&fast, &reference);
}

#[test]
fn noop_hook_forces_per_epoch_yet_stays_bit_identical() {
    // A do-nothing hook forces one solve per epoch; because both modes
    // evaluate the same segment expressions, the reports must still be
    // bit-identical — this is the engine-internal parity guarantee.
    struct Noop;
    impl EpochHook for Noop {
        fn on_epoch(&mut self, _ctx: &mut EpochCtx<'_>) {}
    }
    let transfers = [Transfer::new(DcId(0), DcId(1), 8.0), Transfer::new(DcId(1), DcId(2), 2.0)];
    let conns = ConnMatrix::filled(3, 2);
    let fast = frozen_sim(3, 9).run_transfers(&transfers, &conns, None);
    let mut sim = frozen_sim(3, 9);
    let stepped = sim.run_transfers(&transfers, &conns, Some(&mut Noop));
    assert!(!sim.last_run_stats().coalesced);
    assert_eq!(sim.last_run_stats().solves, stepped.epochs as u64);
    assert_reports_bit_identical(&fast, &stepped);
}

#[test]
fn hooks_see_every_epoch_even_when_coalescing_would_apply() {
    // Regression companion to `hook_can_raise_connections_mid_transfer`:
    // a hook-driven run on a frozen network must observe every epoch.
    struct Counter {
        calls: usize,
        boosted: bool,
    }
    impl EpochHook for Counter {
        fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
            self.calls += 1;
            if !self.boosted && ctx.time_s >= 3.0 {
                ctx.conns.set(0, 3, 9);
                self.boosted = true;
            }
        }
    }
    let mut hook = Counter { calls: 0, boosted: false };
    let mut sim = frozen_sim(4, 21);
    let conns = ConnMatrix::filled(4, 1);
    let report =
        sim.run_transfers(&[Transfer::new(DcId(0), DcId(3), 5.0)], &conns, Some(&mut hook));
    assert_eq!(hook.calls, report.epochs, "the hook must run after every epoch");
    assert!(hook.boosted, "the mid-transfer intervention must have fired");
    assert_eq!(sim.last_run_stats().solves, report.epochs as u64);
}

#[test]
fn fault_timeline_stays_bit_identical_to_reference() {
    // A compound fault timeline — outage, flap, straggler, diurnal wave —
    // injected as coalesced rate-change events must land on exactly the
    // epochs the per-second reference sees them at.
    let schedule = || {
        FaultSchedule::new()
            .dc_outage(DcId(1), 4.0, 16.0)
            .link_flap(DcId(0), DcId(2), 0.35, 1.0, 6.0, 4)
            .straggler(DcId(2), 0.6, 20.0)
            .straggler(DcId(2), 1.0, 35.0)
            .diurnal(50.0, 0.5, 5, 1)
    };
    let transfers = [
        Transfer::new(DcId(0), DcId(1), 9.0),
        Transfer::new(DcId(0), DcId(2), 4.0),
        Transfer::new(DcId(2), DcId(1), 2.0),
        Transfer::new(DcId(1), DcId(0), 0.5),
    ];
    let conns = ConnMatrix::from_fn(3, |i, j| if i == j { 1 } else { 1 + (2 * i + j) as u32 });
    let mut fast_sim = frozen_sim(3, 13);
    fast_sim.set_fault_schedule(schedule());
    let fast = fast_sim.run_transfers(&transfers, &conns, None);
    let mut ref_sim = frozen_sim(3, 13);
    ref_sim.set_fault_schedule(schedule());
    let reference = reference_run(&mut ref_sim, &transfers, &conns);
    assert!(fast_sim.last_run_stats().coalesced);
    assert_reports_bit_identical(&fast, &reference);
    assert_eq!(fast_sim.degraded_s().to_bits(), ref_sim.degraded_s().to_bits());
    assert!(fast_sim.degraded_s() > 0.0, "the timeline must actually degrade the run");
}

#[test]
fn live_dynamics_stay_bit_identical_to_reference() {
    // OU dynamics quantized on a 30 s tick: rates change only at tick
    // boundaries, so the fast path jumps whole inter-tick segments yet
    // must reproduce the per-epoch reference bit for bit.
    let transfers = [
        Transfer::new(DcId(0), DcId(1), 90.0),
        Transfer::new(DcId(0), DcId(2), 20.0),
        Transfer::new(DcId(2), DcId(1), 6.0),
    ];
    let conns = ConnMatrix::from_fn(3, |i, j| if i == j { 1 } else { 1 + (i + 2 * j) as u32 });
    let mut fast_sim = live_sim(3, 77, 30.0);
    let fast = fast_sim.run_transfers(&transfers, &conns, None);
    let stats = fast_sim.last_run_stats();
    let reference = reference_run(&mut live_sim(3, 77, 30.0), &transfers, &conns);
    assert_reports_bit_identical(&fast, &reference);
    assert!(stats.coalesced, "tick-quantized dynamics must keep the fast path");
    assert!(
        stats.solves * 10 <= stats.epochs,
        "30 s ticks at dt 0.25 should coalesce >= 10x: {} solves over {} epochs",
        stats.solves,
        stats.epochs
    );
}

#[test]
fn unit_tick_dynamics_match_reference() {
    // The bit-compat default: a 1 s tick with dt 0.25 still coalesces the
    // four epochs inside each tick while reproducing the legacy trajectory.
    let transfers = [Transfer::new(DcId(0), DcId(1), 25.0), Transfer::new(DcId(1), DcId(2), 8.0)];
    let conns = ConnMatrix::filled(3, 2);
    let mut fast_sim = live_sim(3, 5, 1.0);
    let fast = fast_sim.run_transfers(&transfers, &conns, None);
    let stats = fast_sim.last_run_stats();
    let reference = reference_run(&mut live_sim(3, 5, 1.0), &transfers, &conns);
    assert_reports_bit_identical(&fast, &reference);
    assert!(stats.coalesced);
    assert!(stats.solves < stats.epochs, "{} solves, {} epochs", stats.solves, stats.epochs);
}

#[test]
fn composed_diurnal_and_decay_stay_bit_identical_to_reference() {
    // Piecewise deterministic components (diurnal sinusoid + linear decay)
    // resample on the same tick grid as the OU process, so composing them
    // must not break fast-path parity.
    let install = |sim: &mut NetSim| {
        sim.dynamics_mut().set_diurnal(0.3, 120.0, 15.0);
        sim.dynamics_mut().set_decay(1e-4, 0.7);
    };
    let transfers = [Transfer::new(DcId(0), DcId(1), 60.0), Transfer::new(DcId(0), DcId(2), 9.0)];
    let conns = ConnMatrix::filled(3, 2);
    let mut fast_sim = live_sim(3, 31, 10.0);
    install(&mut fast_sim);
    let fast = fast_sim.run_transfers(&transfers, &conns, None);
    let mut ref_sim = live_sim(3, 31, 10.0);
    install(&mut ref_sim);
    let reference = reference_run(&mut ref_sim, &transfers, &conns);
    assert_reports_bit_identical(&fast, &reference);
    assert!(fast_sim.last_run_stats().coalesced);
}

/// An AIMD-shaped hook: acts only at interval boundaries, and — when
/// `schedule` is set — tells the engine so via `next_wake`, keeping the
/// run coalescible. With `schedule` off the same hook forces per-epoch
/// stepping, which is the reference arm of the hooked parity tests.
struct IntervalHook {
    next_s: f64,
    interval_s: f64,
    schedule: bool,
    updates: usize,
}

impl IntervalHook {
    fn new(interval_s: f64, schedule: bool) -> Self {
        Self { next_s: 0.0, interval_s, schedule, updates: 0 }
    }
}

impl EpochHook for IntervalHook {
    fn on_epoch(&mut self, ctx: &mut EpochCtx<'_>) {
        if ctx.time_s < self.next_s {
            return;
        }
        self.next_s = ctx.time_s + self.interval_s;
        self.updates += 1;
        // A deterministic intervention that depends only on the update
        // count, so both arms drive identical connection trajectories.
        ctx.conns.set(0, 1, 1 + (self.updates % 5) as u32);
        ctx.conns.set(1, 2, 1 + ((self.updates * 2) % 4) as u32);
    }

    fn next_wake(&mut self, _now_s: f64) -> Option<f64> {
        self.schedule.then_some(self.next_s)
    }
}

#[test]
fn wake_scheduling_hook_matches_per_epoch_hook_bit_for_bit() {
    let transfers = [
        Transfer::new(DcId(0), DcId(1), 70.0),
        Transfer::new(DcId(1), DcId(2), 30.0),
        Transfer::new(DcId(0), DcId(2), 5.0),
    ];
    let conns = ConnMatrix::filled(3, 1);

    let mut scheduled = IntervalHook::new(5.0, true);
    let mut fast_sim = frozen_sim(3, 11);
    let fast = fast_sim.run_transfers(&transfers, &conns, Some(&mut scheduled));
    let fast_stats = fast_sim.last_run_stats();

    let mut stepped_hook = IntervalHook::new(5.0, false);
    let mut ref_sim = frozen_sim(3, 11);
    let stepped = ref_sim.run_transfers(&transfers, &conns, Some(&mut stepped_hook));
    let ref_stats = ref_sim.last_run_stats();

    assert_reports_bit_identical(&fast, &stepped);
    assert_eq!(scheduled.updates, stepped_hook.updates, "both arms must act at the same wakes");
    assert!(scheduled.updates >= 3, "the run must span several intervals");
    assert!(fast_stats.coalesced, "a wake-scheduling hook must keep the fast path");
    assert!(!ref_stats.coalesced);
    assert_eq!(ref_stats.solves, stepped.epochs as u64);
    assert!(
        fast_stats.solves * 4 <= ref_stats.solves,
        "wake scheduling should save most solves: {} vs {}",
        fast_stats.solves,
        ref_stats.solves
    );
}

#[test]
fn hooked_live_dynamics_and_faults_compose_bit_identically() {
    // The full horizon: drains, fault boundaries, 10 s dynamics ticks and
    // 5 s hook wakes all interleave; the generalized next-event jump must
    // still match the same hook forced to step per epoch.
    let schedule =
        || FaultSchedule::new().dc_outage(DcId(2), 6.0, 14.0).straggler(DcId(0), 0.7, 20.0);
    let transfers = [Transfer::new(DcId(0), DcId(1), 55.0), Transfer::new(DcId(0), DcId(2), 12.0)];
    let conns = ConnMatrix::filled(3, 2);

    let mut scheduled = IntervalHook::new(5.0, true);
    let mut fast_sim = live_sim(3, 23, 10.0);
    fast_sim.set_fault_schedule(schedule());
    let fast = fast_sim.run_transfers(&transfers, &conns, Some(&mut scheduled));

    let mut stepped_hook = IntervalHook::new(5.0, false);
    let mut ref_sim = live_sim(3, 23, 10.0);
    ref_sim.set_fault_schedule(schedule());
    let stepped = ref_sim.run_transfers(&transfers, &conns, Some(&mut stepped_hook));

    assert_reports_bit_identical(&fast, &stepped);
    assert_eq!(scheduled.updates, stepped_hook.updates);
    assert_eq!(fast_sim.degraded_s().to_bits(), ref_sim.degraded_s().to_bits());
    assert!(fast_sim.last_run_stats().coalesced);
    assert!(fast_sim.last_run_stats().solves < ref_sim.last_run_stats().solves);
}

/// One self-healing fault for the parity proptest: `(kind, dc_a, dc_b,
/// start, duration, factor)` expands to an event plus its restoration, so
/// the per-second reference never steps a permanently-stalled pair to the
/// epoch cap.
fn arb_fault_timeline() -> impl Strategy<Value = Vec<(u8, usize, usize, f64, f64, f64)>> {
    proptest::collection::vec(
        (0u8..4, 0usize..3, 0usize..3, 0.5f64..25.0, 1.0f64..12.0, 0.2f64..1.0),
        0..5,
    )
}

fn build_schedule(timeline: &[(u8, usize, usize, f64, f64, f64)]) -> FaultSchedule {
    let mut s = FaultSchedule::new();
    for &(kind, a, b, start, dur, factor) in timeline {
        s = match kind {
            0 => s.dc_outage(DcId(a), start, start + dur),
            1 => {
                let (src, dst) = (DcId(a), DcId(b));
                s.at(start, wanify_netsim::FaultKind::LinkFactor { src, dst, factor })
                    .at(start + dur, wanify_netsim::FaultKind::LinkFactor { src, dst, factor: 1.0 })
            }
            2 => s.straggler(DcId(a), factor, start).straggler(DcId(a), 1.0, start + dur),
            _ => s
                .at(start, wanify_netsim::FaultKind::GlobalFactor(factor))
                .at(start + dur, wanify_netsim::FaultKind::GlobalFactor(1.0)),
        };
    }
    s
}

proptest! {
    #[test]
    fn fault_event_parity_on_random_timelines(
        payloads in proptest::collection::vec((0usize..3, 0usize..3, 0.0f64..4.0), 1..5),
        timeline in arb_fault_timeline(),
        seed in 0u64..500,
    ) {
        let transfers: Vec<Transfer> = payloads
            .iter()
            .map(|&(s, d, gb)| Transfer::new(DcId(s), DcId(d), gb))
            .collect();
        let conns = ConnMatrix::filled(3, 2);
        let mut fast_sim = frozen_sim(3, seed);
        fast_sim.set_fault_schedule(build_schedule(&timeline));
        let fast = fast_sim.run_transfers(&transfers, &conns, None);
        let mut ref_sim = frozen_sim(3, seed);
        ref_sim.set_fault_schedule(build_schedule(&timeline));
        let reference = reference_run(&mut ref_sim, &transfers, &conns);
        prop_assert_eq!(fast.epochs, reference.epochs);
        prop_assert_eq!(fast.makespan_s.to_bits(), reference.makespan_s.to_bits());
        prop_assert_eq!(fast.min_pair_bw_mbps.to_bits(), reference.min_pair_bw_mbps.to_bits());
        for (a, b) in fast.completion_s.iter().zip(&reference.completion_s) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.egress_gigabits.iter().zip(&reference.egress_gigabits) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(fast_sim.degraded_s().to_bits(), ref_sim.degraded_s().to_bits());
    }

    #[test]
    fn coalescing_parity_on_random_workloads(
        payloads in proptest::collection::vec((0usize..3, 0usize..3, 0.0f64..4.0), 1..7),
        conn_seed in 1u32..6,
        seed in 0u64..1000,
    ) {
        let transfers: Vec<Transfer> = payloads
            .iter()
            .map(|&(s, d, gb)| Transfer::new(DcId(s), DcId(d), gb))
            .collect();
        let conns = ConnMatrix::from_fn(3, |i, j| 1 + ((i as u32 + conn_seed * j as u32) % 5));
        let fast = frozen_sim(3, seed).run_transfers(&transfers, &conns, None);
        let reference = reference_run(&mut frozen_sim(3, seed), &transfers, &conns);
        prop_assert_eq!(fast.epochs, reference.epochs);
        prop_assert_eq!(fast.makespan_s.to_bits(), reference.makespan_s.to_bits());
        prop_assert_eq!(fast.min_pair_bw_mbps.to_bits(), reference.min_pair_bw_mbps.to_bits());
        for (a, b) in fast.completion_s.iter().zip(&reference.completion_s) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.egress_gigabits.iter().zip(&reference.egress_gigabits) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.achieved_bw.as_slice().iter().zip(reference.achieved_bw.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn live_dynamics_parity_on_random_faulted_timelines(
        payloads in proptest::collection::vec((0usize..3, 0usize..3, 0.5f64..5.0), 1..4),
        tick_i in 0usize..4,
        timeline in arb_fault_timeline(),
        seed in 0u64..500,
    ) {
        // Ticks are multiples of dt (0.25 s), so segment time accounting
        // is exact and parity must hold to the bit.
        let tick = [1.0, 2.0, 7.5, 30.0][tick_i];
        let transfers: Vec<Transfer> = payloads
            .iter()
            .map(|&(s, d, gb)| Transfer::new(DcId(s), DcId(d), gb))
            .collect();
        let conns = ConnMatrix::filled(3, 2);
        let mut fast_sim = live_sim(3, seed, tick);
        fast_sim.set_fault_schedule(build_schedule(&timeline));
        let fast = fast_sim.run_transfers(&transfers, &conns, None);
        prop_assert!(fast_sim.last_run_stats().coalesced);
        let mut ref_sim = live_sim(3, seed, tick);
        ref_sim.set_fault_schedule(build_schedule(&timeline));
        let reference = reference_run(&mut ref_sim, &transfers, &conns);
        prop_assert_eq!(fast.epochs, reference.epochs);
        prop_assert_eq!(fast.makespan_s.to_bits(), reference.makespan_s.to_bits());
        prop_assert_eq!(fast.min_pair_bw_mbps.to_bits(), reference.min_pair_bw_mbps.to_bits());
        for (a, b) in fast.completion_s.iter().zip(&reference.completion_s) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.egress_gigabits.iter().zip(&reference.egress_gigabits) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.achieved_bw.as_slice().iter().zip(reference.achieved_bw.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(fast_sim.degraded_s().to_bits(), ref_sim.degraded_s().to_bits());
    }

    #[test]
    fn wake_scheduled_hooks_parity_on_random_workloads(
        payloads in proptest::collection::vec((0usize..3, 0usize..3, 1.0f64..6.0), 1..4),
        interval_i in 0usize..3,
        tick_i in 0usize..3,
        seed in 0u64..500,
    ) {
        let interval = [2.5, 5.0, 10.0][interval_i];
        // tick 0.0 here means frozen dynamics (the frozen_sim arm).
        let tick = [0.0, 1.0, 30.0][tick_i];
        let make_sim = || if tick > 0.0 { live_sim(3, seed, tick) } else { frozen_sim(3, seed) };
        let transfers: Vec<Transfer> = payloads
            .iter()
            .map(|&(s, d, gb)| Transfer::new(DcId(s), DcId(d), gb))
            .collect();
        let conns = ConnMatrix::filled(3, 1);

        let mut scheduled = IntervalHook::new(interval, true);
        let mut fast_sim = make_sim();
        let fast = fast_sim.run_transfers(&transfers, &conns, Some(&mut scheduled));

        let mut stepped_hook = IntervalHook::new(interval, false);
        let mut ref_sim = make_sim();
        let stepped = ref_sim.run_transfers(&transfers, &conns, Some(&mut stepped_hook));

        prop_assert_eq!(scheduled.updates, stepped_hook.updates);
        prop_assert!(fast_sim.last_run_stats().solves <= ref_sim.last_run_stats().solves);
        prop_assert_eq!(fast.epochs, stepped.epochs);
        prop_assert_eq!(fast.makespan_s.to_bits(), stepped.makespan_s.to_bits());
        prop_assert_eq!(fast.min_pair_bw_mbps.to_bits(), stepped.min_pair_bw_mbps.to_bits());
        for (a, b) in fast.completion_s.iter().zip(&stepped.completion_s) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.egress_gigabits.iter().zip(&stepped.egress_gigabits) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fast.achieved_bw.as_slice().iter().zip(stepped.achieved_bw.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
