//! Minimal, self-contained stand-in for the parts of the `criterion` API
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the `criterion` crate
//! name. It runs each benchmark for the group's sample count, reports
//! mean/min/max wall-clock per iteration to stdout, and performs no
//! statistical analysis, warm-up or result persistence.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints a one-line summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX));
            }
        }
        if samples.is_empty() {
            println!("{}/{id}: no iterations recorded", self.name);
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / u32::try_from(samples.len()).unwrap_or(u32::MAX);
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            self.name,
            samples.len()
        );
        self
    }

    /// Ends the group (no-op in the shim; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times one execution of `routine` (criterion runs many; the shim
    /// runs one per sample to keep offline bench runs short).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u32;
        group.sample_size(3).bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.sample_size(1).bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn group_macro_produces_runner() {
        demo_group();
    }
}
