//! Minimal, self-contained stand-in for the parts of the `rayon` API this
//! workspace uses: `par_iter`/`into_par_iter` + `map` + `collect`/`sum`,
//! and `ThreadPoolBuilder::num_threads(..).build().install(..)`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the `rayon` crate name.
//!
//! Execution model: items are materialized up front, then a crew of scoped
//! OS threads drains an atomic work cursor (dynamic load balancing).
//! Results are written back by item index, so **output order — and
//! therefore every deterministic computation built on it — is identical
//! whatever the thread count**. The crew size comes from, in priority
//! order: the innermost active [`ThreadPool::install`], the
//! `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` available.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

thread_local! {
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the next parallel call will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(Cell::get) {
        return n;
    }
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for explicit pool sizing.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 = automatic).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A handle fixing the thread count for closures run under [`install`].
///
/// [`install`]: ThreadPool::install
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every parallel
    /// call it makes (on this thread).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }
}

/// The core engine: applies `f` to every item, in parallel, preserving
/// input order in the output.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = work[i].lock().expect("uncontended slot").take();
                let item = item.expect("each slot is drained exactly once");
                let r = f(item);
                *out[i].lock().expect("uncontended slot") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().expect("worker panics propagate via scope").expect("slot filled"))
        .collect()
}

/// A parallel iterator over materialized items.
///
/// Unlike real rayon this shim is eager about the item list but lazy about
/// the mapped computation, which is where the work lives for every use in
/// this workspace.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel (lazily, at `collect`/`sum`).
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap { items: self.items, f }
    }

    /// Collects the unmapped items (only `Vec` is supported).
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_run(self.items)
    }
}

/// A [`ParIter`] with a pending `map` stage.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Runs the map on the crew and returns results in input order.
    fn run(self) -> Vec<R> {
        parallel_map(self.items, self.f)
    }

    /// Chains another map stage (materializes the current one first).
    pub fn map<R2: Send, G: Fn(R) -> R2 + Sync>(self, g: G) -> ParMap<R, G> {
        ParMap { items: self.run(), f: g }
    }

    /// Collects the results (only `Vec` is supported).
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_run(self.run())
    }

    /// Sums the results in input order (deterministic for floats).
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Conversion from a finished parallel run (mirrors rayon's
/// `FromParallelIterator`; only `Vec` is provided).
pub trait FromParallelIterator<T> {
    /// Builds the collection from ordered results.
    fn from_run(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_run(items: Vec<T>) -> Self {
        items
    }
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

/// By-reference conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the resulting iterator (a reference).
    type Item: Send;
    /// Converts `&self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1.5f64, 2.5, 3.5];
        let v: Vec<f64> = data.par_iter().map(|&x| x + 1.0).collect();
        assert_eq!(v, vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<u64> = single.install(|| (0..64u64).into_par_iter().map(|i| i * i).collect());
        assert_eq!(v[63], 63 * 63);
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<usize> = (0..16usize).into_par_iter().map(|i| i + 1).map(|i| i * 10).collect();
        assert_eq!(v[0], 10);
        assert_eq!(v[15], 160);
    }

    #[test]
    fn deterministic_sum_across_thread_counts() {
        let sum_with = |threads: usize| -> f64 {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| (0..10_000usize).into_par_iter().map(|i| (i as f64).sqrt().sin()).sum())
        };
        assert_eq!(sum_with(1).to_bits(), sum_with(7).to_bits());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            let _: Vec<usize> = (0..8usize)
                .into_par_iter()
                .map(|i| if i == 5 { panic!("boom") } else { i })
                .collect();
        });
    }
}
