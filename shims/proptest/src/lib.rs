//! Minimal, self-contained stand-in for the parts of the `proptest` API
//! this workspace uses: the `proptest!` macro with `arg in strategy`
//! bindings, `prop_assert!`/`prop_assert_eq!`, range and tuple strategies,
//! `prop_map`/`prop_flat_map`, and `collection::{vec, btree_set}`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the `proptest` crate name.
//!
//! Differences from real proptest: cases are drawn from a fixed-seed RNG
//! derived from the test name (fully deterministic across runs — there is
//! no `PROPTEST_CASES` env handling), there is **no shrinking** (a failing
//! case panics with the sampled values left to the assertion message), and
//! the case count is [`CASES`] rather than 256.

use std::collections::BTreeSet;
use std::ops::Range;

use rand::{Rng, SeedableRng, StdRng};

pub mod prelude {
    //! Everything a property-test module needs in scope.
    pub use crate::{prop_assert, prop_assert_eq, proptest, Just, Strategy};
}

/// Number of cases sampled per property (real proptest defaults to 256;
/// this shim trades a smaller count for fast offline test runs).
pub const CASES: usize = 64;

/// The RNG driving a property's sampled inputs.
pub type TestRng = StdRng;

/// Builds the deterministic RNG for a named property.
#[doc(hidden)]
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

int_strategy!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (S0 / 0, S1 / 1);
    (S0 / 0, S1 / 1, S2 / 2);
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3);
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range {r:?}");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::*;

    /// Strategy for `Vec`s of `element` values with a size in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet`s of `element` values with a size in `size`.
    ///
    /// The element domain must be large enough to yield `size` distinct
    /// values; after a bounded number of attempts the set is returned with
    /// however many elements were found (at least one per attempt batch).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(64) + 64 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over [`CASES`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )+) => {$(
        $(#[$meta])*
        fn $name() {
            let mut proptest_rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _proptest_case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)+
                $body
            }
        }
    )+};
}

/// Asserts a condition inside a property body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 10.0f64..20.0, k in 3usize..7) {
            prop_assert!((10.0..20.0).contains(&x));
            prop_assert!((3..7).contains(&k));
        }

        #[test]
        fn vec_strategy_obeys_sizes(
            v in collection::vec(0i32..100, 2..5),
            w in collection::vec((0.0f64..1.0, 0usize..4), 3),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        #[test]
        fn flat_map_respects_dependency(
            pair in (1usize..5).prop_flat_map(|n| {
                collection::vec(0usize..10, n..=n).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn btree_set_yields_requested_sizes(s in collection::btree_set(0i32..1000, 2..40)) {
            prop_assert!(s.len() >= 2 && s.len() < 40);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = collection::vec(0.0f64..1.0, 4);
        let mut a = test_rng("x");
        let mut b = test_rng("x");
        assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
    }

    #[test]
    fn just_always_returns_value() {
        let mut rng = test_rng("just");
        assert_eq!(Just(41).sample(&mut rng), 41);
    }
}
