//! Minimal, self-contained stand-in for the parts of the `rand` crate this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, `seq::SliceRandom::shuffle`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this shim as a path dependency under the `rand` crate name.
//! The generator is SplitMix64: deterministic, seedable, fast, and good
//! enough statistically for simulation and bootstrap sampling. Streams are
//! **not** bit-compatible with the real `rand::rngs::StdRng` (ChaCha12);
//! all golden values in this repository are derived from this shim.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`; equal seeds give equal streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T` (uniform in
    /// `[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits give a uniform value in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that support uniform sampling.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range {self:?}");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )+};
}

int_range!(usize, u64, u32, u16, u8, i64, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_and_reseed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let k = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&k));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle is all but surely nontrivial");
    }
}
