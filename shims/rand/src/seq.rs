//! Sequence helpers (`SliceRandom`).

use crate::Rng;

/// In-place randomization of slices.
pub trait SliceRandom {
    /// Shuffles the slice uniformly (Fisher-Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}
