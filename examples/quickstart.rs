//! Quickstart: gauge runtime bandwidth and balance it with WANify.
//!
//! Builds the paper's 8-region AWS testbed, shows how statically measured
//! bandwidth diverges from runtime bandwidth, trains the prediction model,
//! and plans heterogeneous connections that lift the cluster's weakest
//! link.
//!
//! ```text
//! cargo run --release -p wanify-experiments --example quickstart
//! ```

use wanify::{
    BandwidthAnalyzer, BandwidthSource, MeasuredRuntime, PredictedRuntime, StaticIndependent,
    WanPredictionModel, Wanify, WanifyConfig,
};
use wanify_netsim::{paper_testbed, LinkModelParams, NetSim, VmType};

fn main() {
    // 1. The testbed: 8 AWS regions, one t2.medium worker each (Fig. 1).
    let topo = paper_testbed(VmType::t2_medium());
    let labels = topo.labels();
    let mut sim = NetSim::new(topo, LinkModelParams::default(), 42);

    // 2. Static-independent probing — what existing GDA systems do.
    let static_bw = StaticIndependent::new().gauge(&mut sim).expect("probe matches topology");
    println!("static-independent bandwidth (Mbps):");
    println!("{}", static_bw.render(&labels));

    // 3. Runtime bandwidth under simultaneous all-to-all transfer.
    let runtime = MeasuredRuntime::default().gauge(&mut sim).expect("probe matches topology");
    println!("runtime bandwidth during all-to-all transfer (Mbps):");
    println!("{}", runtime.render(&labels));
    let gaps = static_bw.count_significant_diffs(&runtime, 100.0);
    println!("significant gaps (>100 Mbps): {gaps} of 56 directed pairs\n");

    // 4. WANify's cheap alternative: train once, then predict runtime
    //    bandwidth from 1-second snapshots — the same BandwidthSource
    //    interface as the static probes above.
    let analyzer = BandwidthAnalyzer {
        vm: VmType::t2_medium(),
        params: LinkModelParams::default(),
        samples_per_size: 40,
    };
    let data = analyzer.collect(&[4, 6, 8], 7);
    let model = WanPredictionModel::train(&data, 60, 1);
    println!(
        "prediction model: {} trees, training accuracy {:.2}% (paper: 98.51%)",
        model.n_trees(),
        model.training_accuracy(&data)
    );
    let mut predictor = PredictedRuntime::new(model);
    let predicted = predictor.gauge(&mut sim).expect("sizes match");
    let pred_gaps = predicted.count_significant_diffs(&runtime, 100.0);
    println!("predicted-vs-runtime significant gaps: {pred_gaps} (static had {gaps})\n");

    // 5. Balance the WAN: heterogeneous connections + throttling, planned
    //    straight from the predicted source.
    let wanify = Wanify::new(WanifyConfig::default());
    let plan = wanify.plan(&mut predictor, &mut sim).expect("predictor matches topology");
    println!("optimized connections (max window):");
    println!("{}", plan.max_cons.to_f64().render(&labels));
    let before = runtime.min_off_diag();
    for (i, j, cap) in plan.initial_throttles.iter_pairs() {
        if cap.is_finite() {
            sim.set_throttle(wanify_netsim::DcId(i), wanify_netsim::DcId(j), cap);
        }
    }
    let balanced = sim.measure_runtime(plan.initial_conns(), 20);
    println!(
        "minimum cluster bandwidth: {:.0} -> {:.0} Mbps ({:.1}x)",
        before,
        balanced.bw.min_off_diag(),
        balanced.bw.min_off_diag() / before
    );
}
