//! TPC-DS scheduling under different bandwidth beliefs (paper §5.2, §5.4).
//!
//! Shows how the quality of the bandwidth matrix fed to a WAN-aware
//! scheduler (Tetrium or Kimchi) changes real query latency: the scheduler
//! plans with its belief, but the shuffle runs on the simulated WAN where
//! runtime contention applies.
//!
//! ```text
//! cargo run --release -p wanify-experiments --example tpcds_scheduling [q82|q95|q11|q78]
//! ```

use wanify_experiments::common::{run_wanified, Belief, Effort, ExpEnv, WanifyMode};
use wanify_gda::{Kimchi, Scheduler, Tetrium};
use wanify_workloads::TpcDsQuery;

fn main() {
    let query = match std::env::args().nth(1).as_deref() {
        Some("q82") => TpcDsQuery::Q82,
        Some("q95") => TpcDsQuery::Q95,
        Some("q11") => TpcDsQuery::Q11,
        _ => TpcDsQuery::Q78,
    };
    println!("TPC-DS {query} (25 GB input) on 8 geo-distributed DCs\n");

    let env = ExpEnv::new(8, Effort::Quick, 17);
    let job = query.job(8, 25.0);
    let schedulers: Vec<Box<dyn Scheduler>> =
        vec![Box::new(Tetrium::new()), Box::new(Kimchi::new())];

    for sched in &schedulers {
        println!("--- scheduler: {} ---", sched.name());
        for belief in [Belief::StaticIndependent, Belief::StaticSimultaneous, Belief::Predicted] {
            let mut sim = env.sim(5);
            let report = env.run_baseline(&mut sim, &job, sched.as_ref(), belief);
            println!(
                "  {:<22} latency {:>6.1}s  cost {}",
                belief.label(),
                report.latency_s,
                report.cost
            );
        }
        // And the full WANify treatment on top of the predicted belief.
        let mut sim = env.sim(5);
        let wanified = run_wanified(
            &mut sim,
            &job,
            sched.as_ref(),
            env.source(Belief::Predicted).as_mut(),
            WanifyMode::full(),
            None,
        );
        println!(
            "  {:<22} latency {:>6.1}s  cost {}  (min BW {:.0} Mbps)\n",
            "predicted + WANify", wanified.latency_s, wanified.cost, wanified.min_bw_mbps
        );
    }
}
