//! Geo-distributed TeraSort with and without WANify (paper Fig. 5).
//!
//! Runs the shuffle-heavy TeraSort benchmark on the 8-region testbed under
//! four transfer strategies and prints latency, cost and minimum observed
//! bandwidth for each.
//!
//! ```text
//! cargo run --release -p wanify-experiments --example terasort_geo [input_gb]
//! ```

use wanify_experiments::common::{run_wanified, Belief, Effort, ExpEnv, WanifyMode};
use wanify_gda::{run_job, DataLayout, TransferOptions, VanillaSpark};
use wanify_netsim::ConnMatrix;
use wanify_workloads::terasort;

fn main() {
    let input_gb: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(25.0);
    println!("TeraSort over {input_gb} GB on 8 geo-distributed DCs\n");

    let env = ExpEnv::new(8, Effort::Quick, 11);
    let job = terasort::job(DataLayout::uniform(8, input_gb));
    let sched = VanillaSpark::new();

    // Vanilla Spark: locality-aware, single connection per DC pair.
    let mut sim = env.sim(0);
    let vanilla = env.run_baseline(&mut sim, &job, &sched, Belief::StaticIndependent);
    println!(
        "vanilla Spark       latency {:>6.0}s  cost {}  min BW {:>5.0} Mbps",
        vanilla.latency_s, vanilla.cost, vanilla.min_bw_mbps
    );

    // Uniform parallelism: 8 connections everywhere (WANify-P).
    let mut sim = env.sim(1);
    let conns = ConnMatrix::from_fn(8, |i, j| if i == j { 1 } else { 8 });
    let uniform = run_job(
        &mut sim,
        &job,
        &sched,
        env.source(Belief::Predicted).as_mut(),
        TransferOptions { conns: Some(&conns), hook: None },
    )
    .expect("terasort matches the 8-DC testbed");
    println!(
        "uniform 8 conns     latency {:>6.0}s  cost {}  min BW {:>5.0} Mbps",
        uniform.latency_s, uniform.cost, uniform.min_bw_mbps
    );

    // Full WANify: heterogeneous connections + agents + throttling.
    let mut sim = env.sim(2);
    let wanified = run_wanified(
        &mut sim,
        &job,
        &sched,
        env.source(Belief::Predicted).as_mut(),
        WanifyMode::full(),
        None,
    );
    println!(
        "WANify (TC)         latency {:>6.0}s  cost {}  min BW {:>5.0} Mbps",
        wanified.latency_s, wanified.cost, wanified.min_bw_mbps
    );

    println!(
        "\nWANify vs vanilla: {:.1}% latency reduction, {:.1}x minimum bandwidth",
        100.0 * (vanilla.latency_s - wanified.latency_s) / vanilla.latency_s,
        wanified.min_bw_mbps / vanilla.min_bw_mbps.max(1.0)
    );
}
