//! Geo-distributed ML training with bandwidth-driven gradient quantization
//! (paper §5.6, Fig. 4).
//!
//! Trains an MNIST-scale model on the 8-DC cluster with a parameter server
//! in US East, comparing full-precision gradients against SAGQ-style
//! quantization driven by static, simultaneous and predicted bandwidth
//! beliefs, plus the WANify-enabled variant with parallel heterogeneous
//! connections.
//!
//! ```text
//! cargo run --release -p wanify-experiments --example ml_quantization
//! ```

use wanify::{Wanify, WanifyConfig};
use wanify_experiments::common::{Belief, Effort, ExpEnv};
use wanify_netsim::DcId;
use wanify_workloads::quantization::{run_training, QuantConfig, QuantPolicy};

fn main() {
    let env = ExpEnv::new(8, Effort::Quick, 23);
    let cfg = QuantConfig {
        grad_mb_per_epoch: 450.0,
        compute_s_per_epoch: 60.0,
        epochs: 5,
        target_transfer_s: 25.0,
        ..QuantConfig::default()
    };
    println!(
        "training {} epochs, {} MB gradient traffic/epoch, master at US East\n",
        cfg.epochs, cfg.grad_mb_per_epoch
    );

    // Full precision baseline (NoQ).
    let mut sim = env.sim(0);
    let noq = run_training(&mut sim, &cfg, &QuantPolicy::FullPrecision, None, None);
    println!("NoQ    (32-bit)      {:>6.0}s  cost {}", noq.training_s, noq.cost);

    // Quantization on three beliefs, all gauged through the shared
    // BandwidthSource harness.
    for (name, belief) in [
        ("SAGQ", Belief::StaticIndependent),
        ("SimQ", Belief::StaticSimultaneous),
        ("PredQ", Belief::Predicted),
    ] {
        let mut sim = env.sim(1);
        let bw = env.gauge(belief, &mut sim);
        let r = run_training(&mut sim, &cfg, &QuantPolicy::BwDriven(bw), None, None);
        println!(
            "{name:<6} ({:<19}) {:>4.0}s  cost {}  bits {:?}",
            belief.label(),
            r.training_s,
            r.cost,
            r.bits_per_worker
        );
    }

    // WANify-enabled quantization (WQ): predicted beliefs + parallel
    // heterogeneous connections + local agents.
    let mut sim = env.sim(2);
    let predicted = env.gauge(Belief::Predicted, &mut sim);
    let wanify = Wanify::new(WanifyConfig::default());
    let plan = wanify.plan_matrix(&predicted);
    for (i, j, cap) in plan.initial_throttles.iter_pairs() {
        if cap.is_finite() {
            sim.set_throttle(DcId(i), DcId(j), cap);
        }
    }
    let mut agent = wanify.agent(&plan);
    let conns = plan.initial_conns().clone();
    // Same precision policy as PredQ; the speedup comes from the transport.
    let policy = QuantPolicy::BwDriven(predicted.clone());
    let wq = run_training(&mut sim, &cfg, &policy, Some(&conns), Some(&mut agent));
    println!(
        "WQ     (WANify)      {:>6.0}s  cost {}  min BW {:.0} Mbps",
        wq.training_s, wq.cost, wq.min_bw_mbps
    );
    println!(
        "\nWQ vs NoQ: {:+.1}% training time",
        100.0 * (noq.training_s - wq.training_s) / noq.training_s
    );
}
