//! Multi-tenant fleet demo: concurrent queries contending on one WAN.
//!
//! Serves a deterministic mixed trace (TeraSort / WordCount / TPC-DS)
//! through the fleet engine twice — once with a generous admission limit
//! (heavy contention) and once one-at-a-time (no contention) — and prints
//! what sharing the WAN costs each query.
//!
//! Run with `cargo run --release --example fleet_contention [jobs]`.

use wanify_gda::{Arrivals, FleetConfig, FleetEngine, FleetReport, Tetrium};
use wanify_netsim::{paper_testbed_n, LinkModelParams, NetSim, VmType};
use wanify_workloads::{mixed_trace, TraceConfig};

fn serve(jobs: &[wanify_gda::JobProfile], max_concurrent: usize) -> FleetReport {
    let sim = NetSim::new(paper_testbed_n(VmType::t2_medium(), 8), LinkModelParams::frozen(), 11);
    FleetEngine::new(
        sim,
        Box::new(Tetrium::new()),
        Box::new(wanify::StaticIndependent::new()),
        FleetConfig {
            max_concurrent,
            regauge_every_s: 300.0,
            conns: None,
            faults: None,
            ..FleetConfig::default()
        },
    )
    .run(jobs, &Arrivals::Closed { clients: max_concurrent, think_s: 0.0 })
    .expect("trace matches the 8-DC testbed")
}

fn main() {
    let n_jobs: usize = match std::env::args().nth(1) {
        None => 24,
        Some(raw) => match raw.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: expected a positive job count, got {raw:?}");
                eprintln!("usage: fleet_contention [jobs]   (default: 24)");
                std::process::exit(2);
            }
        },
    };
    println!("{n_jobs} mixed queries on the 8-DC paper testbed (Tetrium, static belief)\n");
    let trace = mixed_trace(&TraceConfig::new(8, n_jobs, 42).scaled(0.5));

    let contended = serve(&trace, n_jobs);
    let serial = serve(&trace, 1);

    let report = |label: &str, r: &FleetReport| {
        let m = r.makespan();
        println!(
            "{label:<22} duration {:>7.0}s  {:.4} jobs/s  makespan p50 {:>6.0}s  p95 {:>6.0}s  \
             mean wait {:>6.0}s  egress ${:.2}",
            r.duration_s,
            r.throughput_jobs_per_s(),
            m.p50,
            m.p95,
            r.queue_wait().mean,
            r.network_cost_usd(),
        );
    };
    report("all-at-once (shared)", &contended);
    report("one-at-a-time", &serial);

    let slowdown = contended.makespan().mean / serial.makespan().mean.max(1e-12);
    println!(
        "\nSharing the WAN stretches the mean query makespan {slowdown:.1}x — \
         the cross-query contention regime the fleet engine exists to study."
    );
}
